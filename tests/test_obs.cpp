// Tests for lhd/obs: counter atomicity under the ThreadPool, scoped-timer
// nesting and accumulator mode, JSON round-trip + deterministic dumps,
// RunReport schema, the LHD_OBS runtime switch, and the regression that
// the instrumented scan's results are bit-identical to the uninstrumented
// scan.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "lhd/core/scan.hpp"
#include "lhd/obs/obs.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::obs {
namespace {

/// Restore the global enabled flag no matter how a test exits.
class EnabledGuard {
 public:
  EnabledGuard() : was_(enabled()) {}
  ~EnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

// --------------------------------------------------------------- registry --

TEST(Registry, CounterIsExactUnderConcurrentAdds) {
  Registry reg;
  Counter& counter = reg.counter("hits");
  constexpr std::size_t kIters = 20000;
  // An explicit 4-worker pool gives genuine concurrency even when the
  // host (and thus the global pool) is single-core.
  ThreadPool pool(4);
  pool.parallel_for(0, kIters, [&](std::size_t) { counter.add(3); });
  EXPECT_EQ(counter.value(), 3 * kIters);
}

TEST(Registry, HistogramAggregatesUnderConcurrentObserves) {
  Registry reg;
  Histogram& hist = reg.histogram("values");
  constexpr std::size_t kIters = 5000;
  ThreadPool pool(4);
  pool.parallel_for(0, kIters, [&](std::size_t i) {
    hist.observe(static_cast<double>(i % 10));
  });
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kIters);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 9.0);
  EXPECT_DOUBLE_EQ(snap.sum, 4.5 * kIters);
  EXPECT_DOUBLE_EQ(snap.mean(), 4.5);
}

TEST(Registry, ConcurrentLookupsOfTheSameNameShareOneCounter) {
  Registry reg;
  constexpr std::size_t kIters = 4000;
  ThreadPool pool(4);
  // Resolve the name on every add — exercises the map lock, and the total
  // still has to come out exact because all lookups alias one counter.
  pool.parallel_for(0, kIters,
                    [&](std::size_t) { reg.counter("shared").add(); });
  EXPECT_EQ(reg.counter("shared").value(), kIters);
  EXPECT_EQ(reg.counters().at("shared"), kIters);
}

TEST(Registry, ResetZeroesButKeepsNames) {
  Registry reg;
  reg.counter("a").add(5);
  reg.histogram("b").observe(1.0);
  reg.reset();
  EXPECT_EQ(reg.counters().at("a"), 0u);
  EXPECT_EQ(reg.histograms().at("b").count, 0u);
}

TEST(Registry, DisabledAddAndObserveAreNoOps) {
  EnabledGuard guard;
  set_enabled(false);
  Registry reg;
  reg.add("silent");
  reg.observe("silent_h", 1.0);
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
  set_enabled(true);
  reg.add("loud");
  EXPECT_EQ(reg.counters().at("loud"), 1u);
}

// ----------------------------------------------------------------- timers --

TEST(ScopedTimer, NestedTimersOrderElapsedTimes) {
  EnabledGuard guard;
  set_enabled(true);
  double outer = 0.0, inner = 0.0;
  {
    ScopedTimer outer_timer(outer);
    {
      ScopedTimer inner_timer(inner);
      // Do a little real work so inner is measurably positive.
      volatile double sink = 0.0;
      for (int i = 0; i < 10000; ++i) sink = sink + i * 0.5;
    }
  }
  EXPECT_GT(inner, 0.0);
  EXPECT_GE(outer, inner);
}

TEST(ScopedTimer, AccumulatorModeSumsAcrossScopes) {
  EnabledGuard guard;
  set_enabled(true);
  double total = 0.0;
  double previous = 0.0;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer timer(total);
    volatile int sink = 0;
    for (int j = 0; j < 1000; ++j) sink = sink + j;
    timer.stop();
    EXPECT_GT(total, previous);  // every scope adds, none resets
    previous = total;
  }
}

TEST(ScopedTimer, StopIsIdempotentAndHistogramCountsOnce) {
  EnabledGuard guard;
  set_enabled(true);
  Registry reg;
  Histogram& hist = reg.histogram("t");
  {
    ScopedTimer timer(hist);
    timer.stop();
    EXPECT_EQ(timer.stop(), 0.0);  // second stop records nothing
  }                                // destructor must not double-record
  EXPECT_EQ(hist.snapshot().count, 1u);
}

TEST(ScopedTimer, DisabledTimerRecordsNothing) {
  EnabledGuard guard;
  set_enabled(false);
  Registry reg;
  Histogram& hist = reg.histogram("t");
  double accum = 0.0;
  {
    ScopedTimer a(hist);
    ScopedTimer b(accum);
  }
  EXPECT_EQ(hist.snapshot().count, 0u);
  EXPECT_EQ(accum, 0.0);
}

// ------------------------------------------------------------------- json --

TEST(Json, RoundTripsNestedStructure) {
  Json root = Json::object();
  root["int"] = 42;
  root["negative"] = -7;
  root["float"] = 0.125;
  root["third"] = 1.0 / 3.0;
  root["bool"] = true;
  root["null"] = Json();
  root["string"] = "hello \"world\"\n\ttab";
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(3.5);
  root["array"] = std::move(arr);
  Json nested = Json::object();
  nested["deep"] = Json::array();
  root["nested"] = std::move(nested);

  const Json parsed = Json::parse(root.dump());
  EXPECT_EQ(parsed, root);
  // Compact form round-trips too.
  EXPECT_EQ(Json::parse(root.dump(0)), root);
}

TEST(Json, DumpIsDeterministicAndKeySorted) {
  Json a = Json::object();
  a["zebra"] = 1;
  a["alpha"] = 2;
  a["mid"] = 3;
  Json b = Json::object();
  b["mid"] = 3;
  b["alpha"] = 2;
  b["zebra"] = 1;
  // Same members, different insertion order -> byte-identical text.
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.dump(), a.dump());
  const std::string text = a.dump(0);
  EXPECT_LT(text.find("alpha"), text.find("mid"));
  EXPECT_LT(text.find("mid"), text.find("zebra"));
}

TEST(Json, DoublesSurviveShortestRoundTrip) {
  for (const double v : {0.1, 1e-9, 123456.789, 1.0 / 3.0, -2.5e17}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_DOUBLE_EQ(parsed.as_double(), v);
  }
  // Integers stay integers (no ".0" suffix), floats gain one.
  EXPECT_EQ(Json(5).dump(), "5");
  EXPECT_EQ(Json(5.0).dump(), "5.0");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, AtAndContainsOnObjects) {
  Json obj = Json::object();
  obj["key"] = 7;
  EXPECT_TRUE(obj.contains("key"));
  EXPECT_FALSE(obj.contains("missing"));
  EXPECT_EQ(obj.at("key").as_int(), 7);
  EXPECT_TRUE(obj.at("missing").is_null());
}

// -------------------------------------------------------------- RunReport --

TEST(RunReport, SchemaHasAllTopLevelKeys) {
  RunReport report("my_tool", "B3");
  const Json root = Json::parse(report.to_json());
  for (const char* key : {"schema", "tool", "suite", "config", "phases",
                          "counters", "histograms"}) {
    EXPECT_TRUE(root.contains(key)) << key;
  }
  EXPECT_EQ(root.at("tool").as_string(), "my_tool");
  EXPECT_EQ(root.at("suite").as_string(), "B3");
  EXPECT_EQ(root.at("schema").as_string(), "lhd.run_report/1");
}

TEST(RunReport, PhasesKeepInsertionOrderAndMergeExtras) {
  RunReport report("tool");
  Json extra = Json::object();
  extra["windows"] = 128;
  report.add_phase("zeta", 1.5, std::move(extra));
  report.add_phase("alpha", 0.5);
  const Json root = Json::parse(report.to_json());
  ASSERT_EQ(root.at("phases").size(), 2u);
  EXPECT_EQ(root.at("phases").items()[0].at("name").as_string(), "zeta");
  EXPECT_EQ(root.at("phases").items()[0].at("windows").as_int(), 128);
  EXPECT_DOUBLE_EQ(root.at("phases").items()[1].at("seconds").as_double(),
                   0.5);
}

TEST(RunReport, CapturesRegistryTotals) {
  EnabledGuard guard;
  set_enabled(true);
  Registry reg;
  reg.add("windows", 64);
  reg.observe("seconds", 2.0);
  reg.observe("seconds", 4.0);
  RunReport report("tool");
  report.capture_registry(reg);
  const Json root = Json::parse(report.to_json());
  EXPECT_EQ(root.at("counters").at("windows").as_int(), 64);
  EXPECT_EQ(root.at("histograms").at("seconds").at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(
      root.at("histograms").at("seconds").at("mean").as_double(), 3.0);
}

TEST(RunReport, WritesParseableFile) {
  RunReport report("tool", "B1");
  report.set_config("stride_nm", 512);
  report.add_phase("scan", 0.25);
  const auto path = std::filesystem::temp_directory_path() /
                    "lhd_test_run_report.json";
  ASSERT_TRUE(report.write(path.string()));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(Json::parse(buffer.str()), Json::parse(report.to_json()));
  std::filesystem::remove(path);
}

// ------------------------------------------- instrumented-scan regression --

class DensityCutDetector final : public core::Detector {
 public:
  explicit DensityCutDetector(float cut) : cut_(cut) {}
  std::string name() const override { return "density-cut"; }
  void train(const data::Dataset&) override {}
  float score(const data::Clip& clip) const override {
    const double area = static_cast<double>(geom::union_area(clip.rects));
    const double total =
        static_cast<double>(clip.window_nm) * clip.window_nm;
    return static_cast<float>(area / total) - cut_;
  }
  bool predict(const data::Clip& clip) const override {
    return score(clip) > threshold();
  }
  void set_threshold(float t) override { threshold_ = t; }
  float threshold() const override { return threshold_; }

 private:
  float cut_;
  float threshold_ = 0.0f;
};

TEST(Scan, InstrumentedScanMatchesUninstrumented) {
  EnabledGuard guard;
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 77);
  const auto index =
      core::ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const DensityCutDetector det(0.05f);
  core::ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;

  ThreadPool pool(4);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    cfg.threads = threads;
    set_enabled(false);
    const auto plain = core::scan_chip(index, det, cfg, pool);
    set_enabled(true);
    const auto instrumented = core::scan_chip(index, det, cfg, pool);

    // Observability must never steer: every result field the scan computes
    // from the layout is bit-identical with instruments on or off.
    ASSERT_GT(plain.flagged, 0u);
    EXPECT_EQ(instrumented.windows_total, plain.windows_total) << threads;
    EXPECT_EQ(instrumented.windows_classified, plain.windows_classified)
        << threads;
    EXPECT_EQ(instrumented.flagged, plain.flagged) << threads;
    EXPECT_EQ(instrumented.hits, plain.hits) << threads;

    // The instrumented run does report per-shard cost; the plain run's
    // shard timings stay zero (no clock reads on the disabled path).
    ASSERT_EQ(instrumented.shards.size(), plain.shards.size());
    std::size_t shard_windows = 0;
    double shard_seconds = 0.0;
    for (const auto& shard : instrumented.shards) {
      shard_windows += shard.windows;
      shard_seconds += shard.seconds;
    }
    EXPECT_EQ(shard_windows, instrumented.windows_total);
    EXPECT_GT(shard_seconds, 0.0);
    for (const auto& shard : plain.shards) {
      EXPECT_EQ(shard.seconds, 0.0);
      EXPECT_EQ(shard.query_seconds, 0.0);
    }
  }
}

TEST(Scan, ScanRecordsIntoGlobalRegistry) {
  EnabledGuard guard;
  set_enabled(true);
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 2, 2, 9);
  const auto index =
      core::ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const DensityCutDetector det(0.05f);

  const auto before = Registry::global().counters();
  const auto windows_before =
      before.count("scan.windows_total") ? before.at("scan.windows_total")
                                         : 0;
  const auto result = core::scan_chip(index, det, {});
  const auto after = Registry::global().counters();
  EXPECT_EQ(after.at("scan.windows_total") - windows_before,
            result.windows_total);
}

}  // namespace
}  // namespace lhd::obs
