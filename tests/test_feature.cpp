// Tests for lhd/feature: density, CCAS, DCT tensor, extractors, scaler, PCA.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lhd/feature/extractor.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/feature/pca.hpp"
#include "lhd/feature/scaler.hpp"
#include "lhd/feature/squish.hpp"
#include "lhd/testkit/testkit.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::feature {
namespace {

using geom::Rect;

data::Clip full_clip() {
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(0, 0, 1024, 1024)};
  return c;
}

data::Clip half_clip() {
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(0, 0, 512, 1024)};  // left half filled
  return c;
}

// --------------------------------------------------------------- density --

TEST(Density, FullClipIsAllOnes) {
  const auto f = density_features(full_clip(), {8, 8});
  ASSERT_EQ(f.size(), 64u);
  for (const float v : f) EXPECT_NEAR(v, 1.0f, 1e-6);
}

TEST(Density, EmptyClipIsAllZeros) {
  data::Clip c;
  c.window_nm = 1024;
  const auto f = density_features(c, {8, 8});
  for (const float v : f) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Density, HalfClipSplitsCleanly) {
  const auto f = density_features(half_clip(), {8, 8});
  // Row-major 8x8: columns 0..3 full, 4..7 empty.
  for (int gy = 0; gy < 8; ++gy) {
    for (int gx = 0; gx < 8; ++gx) {
      const float v = f[static_cast<std::size_t>(gy) * 8 + gx];
      EXPECT_NEAR(v, gx < 4 ? 1.0f : 0.0f, 1e-6);
    }
  }
}

TEST(Density, MeanEqualsGlobalDensity) {
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(100, 200, 400, 500), Rect(600, 100, 900, 900)};
  const auto f = density_features(c, {8, 16});
  double mean = 0;
  for (const float v : f) mean += v;
  mean /= static_cast<double>(f.size());
  const double expected =
      static_cast<double>(geom::union_area(c.rects)) / (1024.0 * 1024.0);
  EXPECT_NEAR(mean, expected, 1e-5);
}

TEST(Density, RejectsIndivisibleGrid) {
  EXPECT_THROW(density_features(full_clip(), {8, 7}), Error);
}

// ------------------------------------------------------------------ ccas --

TEST(Ccas, FullClipRingsAreOne) {
  const auto f = ccas_features(full_clip(), {8, 8, 4});
  ASSERT_EQ(f.size(), 32u);
  for (const float v : f) EXPECT_NEAR(v, 1.0f, 1e-6);
}

TEST(Ccas, CentreDotOnlyLightsInnerRing) {
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(472, 472, 552, 552)};  // 80 nm square at centre
  const CcasConfig cfg{8, 8, 1};
  const auto f = ccas_features(c, cfg);
  EXPECT_GT(f[0], 0.2f);
  for (std::size_t i = 3; i < f.size(); ++i) EXPECT_FLOAT_EQ(f[i], 0.0f);
}

TEST(Ccas, SectorsDistinguishOrientation) {
  const CcasConfig cfg{8, 4, 4};
  // Right half filled vs left half filled must produce different vectors.
  data::Clip right;
  right.window_nm = 1024;
  right.rects = {Rect(512, 0, 1024, 1024)};
  data::Clip left;
  left.window_nm = 1024;
  left.rects = {Rect(0, 0, 512, 1024)};
  EXPECT_NE(ccas_features(right, cfg), ccas_features(left, cfg));
}

TEST(Ccas, SingleSectorIsMirrorInvariant) {
  const CcasConfig cfg{8, 8, 1};
  data::Clip right;
  right.window_nm = 1024;
  right.rects = {Rect(512, 0, 1024, 1024)};
  data::Clip left;
  left.window_nm = 1024;
  left.rects = {Rect(0, 0, 512, 1024)};
  const auto fr = ccas_features(right, cfg);
  const auto fl = ccas_features(left, cfg);
  for (std::size_t i = 0; i < fr.size(); ++i) {
    EXPECT_NEAR(fr[i], fl[i], 0.02f);
  }
}

TEST(Ccas, RejectsBadConfig) {
  EXPECT_THROW(ccas_features(full_clip(), {8, 0, 4}), Error);
}

// ------------------------------------------------------------------- dct --

TEST(Dct, ConstantBlockHasOnlyDc) {
  constexpr int n = 8;
  std::vector<float> block(n * n, 0.5f);
  std::vector<float> coef(n * n);
  dct2d(block.data(), coef.data(), n);
  // Orthonormal DCT: DC = n * mean = 8 * 0.5 = 4.
  EXPECT_NEAR(coef[0], 4.0f, 1e-5);
  for (std::size_t i = 1; i < coef.size(); ++i) EXPECT_NEAR(coef[i], 0.0f, 1e-5);
}

TEST(Dct, InverseRecoversInput) {
  constexpr int n = 8;
  std::vector<float> block(n * n);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<float>(std::sin(0.37 * static_cast<double>(i)));
  }
  std::vector<float> coef(n * n), back(n * n);
  dct2d(block.data(), coef.data(), n);
  idct2d(coef.data(), back.data(), n);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_NEAR(back[i], block[i], 1e-4);
  }
}

TEST(Dct, ParsevalEnergyPreserved) {
  // Orthonormal transform: energy is preserved for every input block.
  CHECK_PROPERTY("dct-parseval", 32, [](Rng& rng, std::size_t) {
    constexpr int n = 8;
    const auto block = testkit::random_block(rng, n);
    std::vector<float> coef(block.size());
    dct2d(block.data(), coef.data(), n);
    double e_in = 0, e_out = 0;
    for (const float v : block) e_in += static_cast<double>(v) * v;
    for (const float v : coef) e_out += static_cast<double>(v) * v;
    EXPECT_NEAR(e_in, e_out, 1e-3);
  });
}

TEST(Dct, ZigzagIsPermutation) {
  for (const int n : {4, 8, 16}) {
    const auto& zz = zigzag_order(n);
    ASSERT_EQ(zz.size(), static_cast<std::size_t>(n) * n);
    std::set<int> unique(zz.begin(), zz.end());
    EXPECT_EQ(unique.size(), zz.size());
    EXPECT_EQ(*unique.begin(), 0);
    EXPECT_EQ(*unique.rbegin(), n * n - 1);
  }
}

TEST(Dct, ZigzagStartsLowFrequency) {
  const auto& zz = zigzag_order(8);
  EXPECT_EQ(zz[0], 0);       // (0,0)
  EXPECT_EQ(zz[1] % 8 + zz[1] / 8, 1);  // first anti-diagonal
  EXPECT_EQ(zz[2] % 8 + zz[2] / 8, 1);
}

TEST(Dct, TensorShapeMatchesConfig) {
  const DctConfig cfg{8, 8, 16};
  const auto t = dct_tensor(full_clip(), cfg);
  EXPECT_EQ(t.channels, 16);
  EXPECT_EQ(t.height, 16);
  EXPECT_EQ(t.width, 16);
  EXPECT_EQ(t.values.size(), 16u * 16 * 16);
}

TEST(Dct, FullClipTensorHasUniformDcOnly) {
  const auto t = dct_tensor(full_clip(), {8, 8, 16});
  for (int y = 0; y < t.height; ++y) {
    for (int x = 0; x < t.width; ++x) {
      EXPECT_NEAR(t.at(0, y, x), 8.0f, 1e-4);  // DC of all-ones 8x8 block
      for (int c = 1; c < t.channels; ++c) {
        EXPECT_NEAR(t.at(c, y, x), 0.0f, 1e-4);
      }
    }
  }
}

TEST(Dct, RejectsTooManyCoefficients) {
  EXPECT_THROW(dct_tensor(full_clip(), {8, 8, 65}), Error);
}

// ------------------------------------------------------------- extractor --

TEST(Extractor, DimsMatchShapes) {
  const auto density = make_density_extractor({8, 16});
  EXPECT_EQ(density->dim(), 256);
  const auto ccas = make_ccas_extractor({8, 16, 4});
  EXPECT_EQ(ccas->dim(), 64);
  const auto dct = make_dct_extractor({8, 8, 16});
  EXPECT_EQ(dct->dim(), 16 * 16 * 16);
  const auto s = dct->shape();
  EXPECT_EQ(s[0], 16);
  EXPECT_EQ(s[1], 16);
  EXPECT_EQ(s[2], 16);
}

TEST(Extractor, ExtractMatchesDim) {
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(0, 0, 500, 300)};
  std::vector<std::unique_ptr<Extractor>> extractors;
  extractors.push_back(make_density_extractor());
  extractors.push_back(make_ccas_extractor());
  extractors.push_back(make_dct_extractor());
  for (const auto& e : extractors) {
    EXPECT_EQ(e->extract(c).size(), static_cast<std::size_t>(e->dim()))
        << e->name();
  }
}

TEST(Extractor, ExtractAllMatchesPerClip) {
  data::Dataset ds;
  for (int i = 0; i < 5; ++i) {
    data::Clip c;
    c.window_nm = 1024;
    c.rects = {Rect(i * 50, 0, i * 50 + 100, 800)};
    ds.add(std::move(c));
  }
  const auto extractor = make_density_extractor();
  const auto rows = extract_all(*extractor, ds);
  ASSERT_EQ(rows.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i], extractor->extract(ds[i]));
  }
}

TEST(Extractor, SignedLabels) {
  data::Dataset ds;
  data::Clip h;
  h.label = data::Label::Hotspot;
  data::Clip n;
  n.label = data::Label::NonHotspot;
  ds.add(h);
  ds.add(n);
  EXPECT_EQ(signed_labels(ds), (std::vector<float>{1.0f, -1.0f}));
}

// ---------------------------------------------------------------- scaler --

TEST(Scaler, StandardizesToZeroMeanUnitVar) {
  std::vector<std::vector<float>> rows = {
      {1.0f, 10.0f}, {2.0f, 20.0f}, {3.0f, 30.0f}, {4.0f, 40.0f}};
  Scaler s;
  s.fit(rows);
  s.transform_all(rows);
  for (int d = 0; d < 2; ++d) {
    double mean = 0, var = 0;
    for (const auto& r : rows) mean += r[static_cast<std::size_t>(d)];
    mean /= 4;
    for (const auto& r : rows) {
      var += (r[static_cast<std::size_t>(d)] - mean) *
             (r[static_cast<std::size_t>(d)] - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(Scaler, ConstantDimensionPassesThrough) {
  std::vector<std::vector<float>> rows = {{5.0f}, {5.0f}, {5.0f}};
  Scaler s;
  s.fit(rows);
  std::vector<float> row = {5.0f};
  s.transform(row);
  EXPECT_FLOAT_EQ(row[0], 0.0f);  // (5-5)/1
}

TEST(Scaler, RejectsEmptyFit) {
  Scaler s;
  EXPECT_THROW(s.fit({}), Error);
}

TEST(Scaler, RejectsUnfittedTransform) {
  Scaler s;
  std::vector<float> row = {1.0f};
  EXPECT_THROW(s.transform(row), Error);
}

TEST(Scaler, RejectsDimensionMismatch) {
  Scaler s;
  s.fit({{1.0f, 2.0f}});
  std::vector<float> row = {1.0f};
  EXPECT_THROW(s.transform(row), Error);
}

// ------------------------------------------------------------------- pca --

TEST(Pca, RecoversDominantDirection) {
  // Points stretched along (1, 1)/sqrt(2) with small orthogonal noise.
  Rng rng(8);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.next_gaussian(0.0, 10.0);
    const double n = rng.next_gaussian(0.0, 0.3);
    rows.push_back({static_cast<float>(t + n), static_cast<float>(t - n)});
  }
  Pca pca;
  Rng fit_rng(9);
  pca.fit(rows, 1, fit_rng);
  const auto& dir = pca.components()[0];
  const double ratio = std::abs(dir[0] / dir[1]);
  EXPECT_NEAR(ratio, 1.0, 0.05);  // direction ~ (±1, ±1)
  EXPECT_GT(pca.explained_variance()[0], 50.0f);
}

TEST(Pca, TransformReducesDimensions) {
  Rng rng(8);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({static_cast<float>(rng.next_double()),
                    static_cast<float>(rng.next_double()),
                    static_cast<float>(rng.next_double()),
                    static_cast<float>(rng.next_double())});
  }
  Pca pca;
  Rng fit_rng(10);
  pca.fit(rows, 2, fit_rng);
  const auto out = pca.transform_all(rows);
  EXPECT_EQ(out.size(), 50u);
  EXPECT_EQ(out[0].size(), 2u);
}

TEST(Pca, VarianceIsDescending) {
  Rng rng(21);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({static_cast<float>(rng.next_gaussian(0, 5)),
                    static_cast<float>(rng.next_gaussian(0, 2)),
                    static_cast<float>(rng.next_gaussian(0, 0.5))});
  }
  Pca pca;
  Rng fit_rng(22);
  pca.fit(rows, 3, fit_rng);
  const auto& var = pca.explained_variance();
  EXPECT_GE(var[0], var[1]);
  EXPECT_GE(var[1], var[2]);
}

TEST(Pca, RejectsBadComponentCount) {
  Pca pca;
  Rng rng(1);
  std::vector<std::vector<float>> rows = {{1.0f, 2.0f}};
  EXPECT_THROW(pca.fit(rows, 3, rng), Error);
  EXPECT_THROW(pca.fit(rows, 0, rng), Error);
}

TEST(Pca, RejectsUnfittedTransform) {
  Pca pca;
  EXPECT_THROW(pca.transform({1.0f}), Error);
}


// ---------------------------------------------------------------- squish --

TEST(Squish, EncodeDecodeIsLossless) {
  const std::vector<Rect> rects = {Rect(100, 200, 400, 500),
                                   Rect(600, 100, 900, 900),
                                   Rect(100, 600, 400, 700)};
  const auto pattern = squish_encode(rects, 1024);
  const auto back = squish_decode(pattern);
  EXPECT_EQ(geom::union_area(back), geom::union_area(rects));
}

TEST(Squish, EmptyClipEncodesToEmptyTopology) {
  const auto pattern = squish_encode({}, 1024);
  EXPECT_EQ(pattern.nx(), 1);
  EXPECT_EQ(pattern.ny(), 1);
  EXPECT_EQ(pattern.topology[0], 0);
}

TEST(Squish, SingleRectTopology) {
  const auto pattern = squish_encode({Rect(100, 200, 400, 500)}, 1024);
  // Cuts: x {0,100,400,1024}, y {0,200,500,1024} -> 3x3 cells, centre on.
  EXPECT_EQ(pattern.nx(), 3);
  EXPECT_EQ(pattern.ny(), 3);
  EXPECT_EQ(pattern.topology[1 * 3 + 1], 1);
  EXPECT_EQ(pattern.topology[0], 0);
}

TEST(Squish, FeatureHasFixedLength) {
  data::Clip simple;
  simple.window_nm = 1024;
  simple.rects = {Rect(0, 0, 100, 100)};
  data::Clip busy;
  busy.window_nm = 1024;
  for (int i = 0; i < 30; ++i) {
    busy.rects.push_back(Rect(i * 30, i * 20, i * 30 + 25, i * 20 + 15));
  }
  const SquishConfig cfg{16};
  EXPECT_EQ(squish_features(simple, cfg).size(),
            squish_features(busy, cfg).size());
  EXPECT_EQ(squish_features(simple, cfg).size(), 15u * 15 + 2 * 15);
}

TEST(Squish, DeltasSumToWindow) {
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(100, 200, 400, 500), Rect(600, 100, 900, 900)};
  const SquishConfig cfg{16};
  const auto f = squish_features(c, cfg);
  const int cells = cfg.max_cuts - 1;
  double dx = 0, dy = 0;
  for (int i = 0; i < cells; ++i) {
    dx += f[static_cast<std::size_t>(cells) * cells + i];
    dy += f[static_cast<std::size_t>(cells) * cells + cells + i];
  }
  EXPECT_NEAR(dx, 1.0, 1e-5);  // normalized deltas tile the window
  EXPECT_NEAR(dy, 1.0, 1e-5);
}

TEST(Squish, AdaptiveReductionPreservesCoverageApproximately) {
  // A clip with many more cuts than the frame: total covered fraction of
  // the topology must survive the merging within a tolerance.
  data::Clip c;
  c.window_nm = 1024;
  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    const auto x = static_cast<geom::Coord>(rng.next_int(0, 900));
    const auto y = static_cast<geom::Coord>(rng.next_int(0, 900));
    c.rects.push_back(Rect(x, y, x + 80, y + 60));
  }
  const SquishConfig cfg{12};
  const auto f = squish_features(c, cfg);
  double on = 0;
  const int cells = cfg.max_cuts - 1;
  for (int i = 0; i < cells * cells; ++i) on += f[static_cast<std::size_t>(i)];
  EXPECT_GT(on, 0.0);  // merging may only grow coverage, never erase it
}

TEST(Squish, ExtractorInterface) {
  const auto e = make_squish_extractor({16});
  EXPECT_EQ(e->name(), "squish");
  EXPECT_EQ(e->dim(), 15 * 15 + 2 * 15);
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(0, 0, 512, 512)};
  EXPECT_EQ(e->extract(c).size(), static_cast<std::size_t>(e->dim()));
}

TEST(Squish, RejectsTinyFrame) {
  data::Clip c;
  c.window_nm = 1024;
  EXPECT_THROW(squish_features(c, {2}), Error);
}

}  // namespace
}  // namespace lhd::feature
