// Finite-difference gradient checks for the trainable layers and the
// loss. Analytic backward() gradients are compared against central
// differences of a scalar loss L = sum_i c_i * out_i (fixed random
// coefficients), for both the input gradient and every parameter
// gradient. Run on the reference kernel path so the forward being
// differentiated is the plain textbook loop; the fast path is held
// equivalent to it by the nn-kernel-parity property and the conformance
// suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "lhd/nn/gemm.hpp"
#include "lhd/nn/layers.hpp"
#include "lhd/nn/loss.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::nn {
namespace {

constexpr double kEps = 1e-2;      // FD step — large enough for float noise
constexpr double kRelTol = 2e-2;   // relative agreement required
constexpr double kAbsFloor = 1e-3; // below this magnitude, compare absolutely

/// Pin the reference kernel path for the test's lifetime.
class NnGradTest : public ::testing::Test {
 protected:
  void SetUp() override { set_kernel_path(KernelPath::kReference); }
  void TearDown() override { clear_kernel_path_override(); }
};

void expect_grad_close(double analytic, double fd, const std::string& what) {
  const double scale = std::max(std::abs(analytic), std::abs(fd));
  const double tol = std::max(kAbsFloor, kRelTol * scale);
  EXPECT_LE(std::abs(analytic - fd), tol)
      << what << ": analytic " << analytic << " vs finite-difference " << fd;
}

/// L(layer(x)) with fixed coefficients — the scalar being differentiated.
double loss_of(Layer& layer, const Tensor& x,
               const std::vector<float>& coeffs) {
  const Tensor out = layer.forward(x, /*training=*/true);
  EXPECT_EQ(out.size(), coeffs.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    loss += static_cast<double>(coeffs[i]) * static_cast<double>(out[i]);
  }
  return loss;
}

/// Check dL/dx and every dL/dparam of `layer` at input `x` against central
/// differences.
void check_layer_gradients(Layer& layer, Tensor x, Rng& rng) {
  const Tensor out0 = layer.forward(x, /*training=*/true);
  std::vector<float> coeffs(out0.size());
  for (float& c : coeffs) c = static_cast<float>(rng.next_double(-1.0, 1.0));

  Tensor grad_out(out0.shape());
  for (std::size_t i = 0; i < coeffs.size(); ++i) grad_out[i] = coeffs[i];
  for (const Param& p : layer.params()) {
    std::fill(p.grad->begin(), p.grad->end(), 0.0f);
  }
  const Tensor grad_in = layer.backward(grad_out);
  ASSERT_EQ(grad_in.size(), x.size());

  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(kEps);
    const double lp = loss_of(layer, x, coeffs);
    x[i] = orig - static_cast<float>(kEps);
    const double lm = loss_of(layer, x, coeffs);
    x[i] = orig;
    expect_grad_close(grad_in[i], (lp - lm) / (2.0 * kEps),
                      "input grad [" + std::to_string(i) + "]");
  }

  std::size_t param_idx = 0;
  for (const Param& p : layer.params()) {
    for (std::size_t j = 0; j < p.value->size(); ++j) {
      const float orig = (*p.value)[j];
      (*p.value)[j] = orig + static_cast<float>(kEps);
      const double lp = loss_of(layer, x, coeffs);
      (*p.value)[j] = orig - static_cast<float>(kEps);
      const double lm = loss_of(layer, x, coeffs);
      (*p.value)[j] = orig;
      expect_grad_close((*p.grad)[j], (lp - lm) / (2.0 * kEps),
                        "param " + std::to_string(param_idx) + " grad [" +
                            std::to_string(j) + "]");
    }
    ++param_idx;
  }
}

Tensor random_tensor(Rng& rng, std::vector<int> shape) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  return t;
}

TEST_F(NnGradTest, Conv2dBackwardMatchesFiniteDifferences) {
  Rng rng(101);
  Conv2d layer(/*in_channels=*/2, /*out_channels=*/3, /*kernel=*/3,
               /*pad=*/1);
  layer.init(rng);
  check_layer_gradients(layer, random_tensor(rng, {2, 2, 6, 6}), rng);
}

TEST_F(NnGradTest, Conv2dNoPaddingBackwardMatchesFiniteDifferences) {
  // pad=0 exercises the valid-convolution index arithmetic in backward.
  Rng rng(202);
  Conv2d layer(/*in_channels=*/1, /*out_channels=*/2, /*kernel=*/3,
               /*pad=*/0);
  layer.init(rng);
  check_layer_gradients(layer, random_tensor(rng, {1, 1, 5, 5}), rng);
}

TEST_F(NnGradTest, LinearBackwardMatchesFiniteDifferences) {
  Rng rng(303);
  Linear layer(/*in_features=*/10, /*out_features=*/4);
  layer.init(rng);
  check_layer_gradients(layer, random_tensor(rng, {3, 10}), rng);
}

TEST_F(NnGradTest, SoftmaxCrossEntropyGradMatchesFiniteDifferences) {
  Rng rng(404);
  Tensor logits = random_tensor(rng, {3, 2});
  // Soft targets: random positive rows normalized to sum to 1 (the
  // biased-learning target shape, not just one-hot).
  Tensor targets({3, 2});
  for (int s = 0; s < 3; ++s) {
    float sum = 0.0f;
    for (int c = 0; c < 2; ++c) {
      const auto v = static_cast<float>(rng.next_double(0.05, 1.0));
      targets[static_cast<std::size_t>(s * 2 + c)] = v;
      sum += v;
    }
    for (int c = 0; c < 2; ++c) {
      targets[static_cast<std::size_t>(s * 2 + c)] /= sum;
    }
  }
  const LossResult r = softmax_cross_entropy(logits, targets);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(kEps);
    const double lp = softmax_cross_entropy(logits, targets).loss;
    logits[i] = orig - static_cast<float>(kEps);
    const double lm = softmax_cross_entropy(logits, targets).loss;
    logits[i] = orig;
    expect_grad_close(r.grad[i], (lp - lm) / (2.0 * kEps),
                      "loss grad [" + std::to_string(i) + "]");
  }
}

}  // namespace
}  // namespace lhd::nn
