// Tests for lhd/geom/raster: coverage rasterization, image ops, morphology,
// connected components.

#include <gtest/gtest.h>

#include "lhd/geom/raster.hpp"
#include "lhd/util/check.hpp"

namespace lhd::geom {
namespace {

// --------------------------------------------------------------- image ---

TEST(Image, ConstructAndAccess) {
  FloatImage img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
  img.at(2, 1) = 1.0f;
  EXPECT_FLOAT_EQ(img.at(2, 1), 1.0f);
}

TEST(Image, GetOrReturnsOutsideValue) {
  ByteImage img(2, 2, 1);
  EXPECT_EQ(img.get_or(-1, 0, 9), 9);
  EXPECT_EQ(img.get_or(0, 2, 9), 9);
  EXPECT_EQ(img.get_or(1, 1, 9), 1);
}

TEST(Image, RejectsNonPositiveDims) {
  EXPECT_THROW(FloatImage(0, 5), Error);
  EXPECT_THROW(FloatImage(5, -1), Error);
}

// ------------------------------------------------------------- rasterize --

TEST(Rasterize, FullCellCoverage) {
  // One rect exactly covering pixels (1,1)..(2,2) at 8 nm pixels.
  const auto img = rasterize({Rect(8, 8, 24, 24)}, 64, 8);
  EXPECT_EQ(img.width(), 8);
  EXPECT_FLOAT_EQ(img.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(img.at(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(3, 1), 0.0f);
}

TEST(Rasterize, FractionalCoverage) {
  // Rect covering half of pixel (0,0): x in [0,4) of [0,8).
  const auto img = rasterize({Rect(0, 0, 4, 8)}, 64, 8);
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.5f);
  // Quarter coverage.
  const auto img2 = rasterize({Rect(0, 0, 4, 4)}, 64, 8);
  EXPECT_FLOAT_EQ(img2.at(0, 0), 0.25f);
}

TEST(Rasterize, OverlapClampsToOne) {
  const auto img = rasterize({Rect(0, 0, 8, 8), Rect(0, 0, 8, 8)}, 64, 8);
  EXPECT_FLOAT_EQ(img.at(0, 0), 1.0f);
}

TEST(Rasterize, TotalCoverageEqualsArea) {
  const std::vector<Rect> rects = {Rect(3, 5, 37, 19), Rect(40, 40, 64, 64)};
  const auto img = rasterize(rects, 64, 8);
  double total = 0;
  for (const float v : img.data()) total += v;
  const double expected = (34.0 * 14 + 24.0 * 24) / 64.0;  // px^2
  EXPECT_NEAR(total, expected, 1e-4);
}

TEST(Rasterize, ClipsToWindow) {
  const auto img = rasterize({Rect(-100, -100, 200, 200)}, 64, 8);
  for (const float v : img.data()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Rasterize, RejectsBadPixelSize) {
  EXPECT_THROW(rasterize({}, 64, 7), Error);   // 7 does not divide 64
  EXPECT_THROW(rasterize({}, 64, 0), Error);
}

TEST(Rasterize, EmptyRectListGivesBlank) {
  const auto img = rasterize({}, 64, 8);
  for (const float v : img.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

// -------------------------------------------------------------- binarize --

TEST(Binarize, ThresholdBoundary) {
  FloatImage img(2, 1);
  img.at(0, 0) = 0.49f;
  img.at(1, 0) = 0.50f;
  const auto b = binarize(img, 0.5f);
  EXPECT_EQ(b.at(0, 0), 0);
  EXPECT_EQ(b.at(1, 0), 1);
}

// ----------------------------------------------------------------- flips --

TEST(Flips, FlipXReversesColumns) {
  FloatImage img(3, 2);
  img.at(0, 0) = 1.0f;
  const auto f = flip_x(img);
  EXPECT_FLOAT_EQ(f.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(f.at(0, 0), 0.0f);
}

TEST(Flips, FlipYReversesRows) {
  FloatImage img(2, 3);
  img.at(0, 0) = 1.0f;
  const auto f = flip_y(img);
  EXPECT_FLOAT_EQ(f.at(0, 2), 1.0f);
}

TEST(Flips, FlipsAreInvolutions) {
  FloatImage img(5, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) img.at(x, y) = static_cast<float>(x * 10 + y);
  }
  EXPECT_EQ(flip_x(flip_x(img)), img);
  EXPECT_EQ(flip_y(flip_y(img)), img);
}

TEST(Flips, Rotate90FourTimesIsIdentity) {
  FloatImage img(4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) img.at(x, y) = static_cast<float>(x + 7 * y);
  }
  const auto r4 = rotate90(rotate90(rotate90(rotate90(img))));
  EXPECT_EQ(r4, img);
}

TEST(Flips, Rotate90MovesCorner) {
  FloatImage img(3, 2);
  img.at(2, 0) = 1.0f;  // right end of bottom row
  const auto r = rotate90(img);  // CCW
  EXPECT_EQ(r.width(), 2);
  EXPECT_EQ(r.height(), 3);
  EXPECT_FLOAT_EQ(r.at(0, 0), 1.0f);
}

// ------------------------------------------------- connected components --

TEST(ConnectedComponents, CountsSeparateBlobs) {
  ByteImage img(10, 10, 0);
  img.at(1, 1) = 1;
  img.at(1, 2) = 1;
  img.at(8, 8) = 1;
  int n = 0;
  const auto labels = connected_components(img, &n);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(labels.at(1, 1), labels.at(1, 2));
  EXPECT_NE(labels.at(1, 1), labels.at(8, 8));
  EXPECT_EQ(labels.at(0, 0), 0);
}

TEST(ConnectedComponents, DiagonalIsNotConnected) {
  ByteImage img(4, 4, 0);
  img.at(0, 0) = 1;
  img.at(1, 1) = 1;
  int n = 0;
  connected_components(img, &n);
  EXPECT_EQ(n, 2);
}

TEST(ConnectedComponents, EmptyImage) {
  ByteImage img(5, 5, 0);
  int n = -1;
  connected_components(img, &n);
  EXPECT_EQ(n, 0);
}

TEST(ConnectedComponents, FullImageIsOneComponent) {
  ByteImage img(6, 6, 1);
  int n = 0;
  const auto labels = connected_components(img, &n);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(labels.at(0, 0), 1);
  EXPECT_EQ(labels.at(5, 5), 1);
}

TEST(ConnectedComponents, UShapeIsOneComponent) {
  ByteImage img(5, 5, 0);
  for (int y = 0; y < 5; ++y) {
    img.at(0, y) = 1;
    img.at(4, y) = 1;
  }
  for (int x = 0; x < 5; ++x) img.at(x, 0) = 1;
  int n = 0;
  connected_components(img, &n);
  EXPECT_EQ(n, 1);
}

TEST(CountNonzero, Counts) {
  ByteImage img(4, 4, 0);
  img.at(0, 0) = 1;
  img.at(3, 3) = 5;
  EXPECT_EQ(count_nonzero(img), 2);
}

// ------------------------------------------------------------ morphology --

TEST(Morphology, DilateGrowsByRadius) {
  ByteImage img(9, 9, 0);
  img.at(4, 4) = 1;
  const auto d = dilate(img, 2);
  EXPECT_EQ(count_nonzero(d), 25);  // 5x5 chebyshev ball
  EXPECT_EQ(d.at(2, 2), 1);
  EXPECT_EQ(d.at(1, 4), 0);
}

TEST(Morphology, ErodeShrinksByRadius) {
  ByteImage img(9, 9, 0);
  for (int y = 2; y <= 6; ++y) {
    for (int x = 2; x <= 6; ++x) img.at(x, y) = 1;
  }
  const auto e = erode(img, 1);
  EXPECT_EQ(count_nonzero(e), 9);  // 3x3 core survives
  EXPECT_EQ(e.at(4, 4), 1);
  EXPECT_EQ(e.at(2, 2), 0);
}

TEST(Morphology, ErodeTreatsOutsideAsForeground) {
  // A shape touching the border must not erode from the border side.
  ByteImage img(5, 5, 0);
  for (int y = 0; y < 5; ++y) {
    img.at(0, y) = 1;
    img.at(1, y) = 1;
  }
  const auto e = erode(img, 1);
  for (int y = 1; y < 4; ++y) EXPECT_EQ(e.at(0, y), 1);
  EXPECT_EQ(e.at(1, 2), 0);  // interior edge erodes
}

TEST(Morphology, ZeroRadiusIsIdentity) {
  ByteImage img(4, 4, 0);
  img.at(1, 2) = 1;
  EXPECT_EQ(dilate(img, 0), img);
  EXPECT_EQ(erode(img, 0), img);
}

TEST(Morphology, OpeningIsContainedInOriginal) {
  ByteImage img(16, 16, 0);
  for (int y = 4; y < 12; ++y) {
    for (int x = 4; x < 12; ++x) img.at(x, y) = 1;
  }
  img.at(0, 0) = 1;  // isolated pixel vanishes under opening
  const auto opened = dilate(erode(img, 1), 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (opened.at(x, y)) {
        EXPECT_TRUE(img.at(x, y));
      }
    }
  }
  EXPECT_EQ(opened.at(0, 0), 0);
}

TEST(Morphology, NegativeRadiusThrows) {
  ByteImage img(4, 4, 0);
  EXPECT_THROW(dilate(img, -1), Error);
}

}  // namespace
}  // namespace lhd::geom
