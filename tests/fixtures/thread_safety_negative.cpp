// Negative Thread Safety Analysis fixture (scripts/check_thread_safety.sh).
//
// Identical state to the positive fixture, but `racy_bump` touches the
// guarded counter WITHOUT holding the mutex. The build gate asserts this
// file does NOT compile under -Werror=thread-safety: if it ever does,
// deleting an annotation (or a lock) in real code would slip through too.

#include <cstdint>

#include "lhd/util/thread_annotations.hpp"

namespace {

class Tally {
 public:
  // BUG (deliberate): writes count_ with mu_ not held.
  void racy_bump() { ++count_; }

  std::uint64_t value() const {
    const lhd::MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable lhd::Mutex mu_;
  std::uint64_t count_ LHD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Tally tally;
  tally.racy_bump();
  return tally.value() == 1 ? 0 : 1;
}
