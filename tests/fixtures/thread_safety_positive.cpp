// Positive Thread Safety Analysis fixture (scripts/check_thread_safety.sh).
//
// Exercises the whole annotation vocabulary the tree relies on, written
// the way in-tree code is supposed to: every access to LHD_GUARDED_BY
// state happens under a MutexLock or inside an LHD_REQUIRES function.
// This must compile clean under -Werror=thread-safety; if it stops doing
// so, the shims in util/thread_annotations.hpp are broken, not the code.

#include <cstdint>

#include "lhd/util/thread_annotations.hpp"

namespace {

class Tally {
 public:
  void bump() LHD_EXCLUDES(mu_) {
    const lhd::MutexLock lock(mu_);
    bump_locked();
  }

  std::uint64_t value() const LHD_EXCLUDES(mu_) {
    const lhd::MutexLock lock(mu_);
    return count_;
  }

  void wait_nonzero() LHD_EXCLUDES(mu_) {
    const lhd::MutexLock lock(mu_);
    cv_.wait(mu_, [this]() LHD_NO_THREAD_SAFETY_ANALYSIS {
      return count_ != 0;
    });
  }

  void notify() { cv_.notify_all(); }

 private:
  void bump_locked() LHD_REQUIRES(mu_) { ++count_; }

  mutable lhd::Mutex mu_;
  lhd::CondVar cv_;
  std::uint64_t count_ LHD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Tally tally;
  tally.bump();
  tally.notify();
  return tally.value() == 1 ? 0 : 1;
}
