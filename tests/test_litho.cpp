// Tests for lhd/litho: optics, resist, process corners, hotspot oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "lhd/geom/raster.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/litho/metrology.hpp"
#include "lhd/litho/optics.hpp"

namespace lhd::litho {
namespace {

using geom::ByteImage;
using geom::FloatImage;
using geom::Rect;

FloatImage raster_of(const std::vector<Rect>& rects) {
  return geom::rasterize(rects, 1024, 8);  // 128x128 clip
}

// --------------------------------------------------------- gaussian blur --

TEST(GaussianBlur, PreservesUniformField) {
  FloatImage img(32, 32, 0.7f);
  const auto out = gaussian_blur(img, 2.5);
  for (const float v : out.data()) EXPECT_NEAR(v, 0.7f, 1e-5);
}

TEST(GaussianBlur, MassConservedWithMirrorPadding) {
  FloatImage img(64, 64, 0.0f);
  img.at(32, 32) = 1.0f;
  const auto out = gaussian_blur(img, 3.0);
  double sum = 0;
  for (const float v : out.data()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(GaussianBlur, PeakAtImpulseLocation) {
  FloatImage img(64, 64, 0.0f);
  img.at(20, 40) = 1.0f;
  const auto out = gaussian_blur(img, 2.0);
  float best = -1;
  int bx = -1, by = -1;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (out.at(x, y) > best) {
        best = out.at(x, y);
        bx = x;
        by = y;
      }
    }
  }
  EXPECT_EQ(bx, 20);
  EXPECT_EQ(by, 40);
}

TEST(GaussianBlur, IsSeparableAndSymmetric) {
  FloatImage img(64, 64, 0.0f);
  img.at(32, 32) = 1.0f;
  const auto out = gaussian_blur(img, 2.0);
  EXPECT_NEAR(out.at(30, 32), out.at(34, 32), 1e-6);
  EXPECT_NEAR(out.at(32, 30), out.at(32, 34), 1e-6);
  EXPECT_NEAR(out.at(30, 32), out.at(32, 30), 1e-6);
}

TEST(GaussianBlur, RejectsNonPositiveSigma) {
  FloatImage img(8, 8, 0.0f);
  EXPECT_THROW(gaussian_blur(img, 0.0), Error);
}

// ---------------------------------------------------------------- optics --

TEST(Simulator, LargePadPrintsNearDrawnEdge) {
  // A 512x512 nm pad centred in the clip; the printed edge must lie within
  // ~1.5 px of the drawn edge at nominal conditions.
  LithoSimulator sim;
  const auto mask = raster_of({Rect(256, 256, 768, 768)});
  const auto printed = sim.printed(mask, {"nominal", 1.0, 0.0});
  // Drawn edge columns are x = 32 and x = 96 (at 8 nm pixels).
  EXPECT_EQ(printed.at(64, 64), 1);   // centre prints
  EXPECT_EQ(printed.at(34, 64), 1);   // just inside
  EXPECT_EQ(printed.at(29, 64), 0);   // outside by > 1 px
  EXPECT_EQ(printed.at(10, 64), 0);   // far outside
}

TEST(Simulator, IntensityCentreOfPadIsNearOne) {
  LithoSimulator sim;
  const auto mask = raster_of({Rect(128, 128, 896, 896)});
  const auto air = sim.aerial(mask, 0.0);
  EXPECT_NEAR(air.at(64, 64), 1.0f, 0.02f);
}

TEST(Simulator, DoseScalesThreshold) {
  LithoSimulator sim;
  const auto mask = raster_of({Rect(256, 256, 768, 768)});
  const auto air = sim.aerial(mask, 0.0);
  const auto low = sim.threshold_aerial(air, 0.8);
  const auto high = sim.threshold_aerial(air, 1.2);
  // Higher dose prints a superset of pixels.
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      if (low.at(x, y)) {
        EXPECT_TRUE(high.at(x, y));
      }
    }
  }
  EXPECT_GT(geom::count_nonzero(high), geom::count_nonzero(low));
}

TEST(Simulator, DefocusReducesNarrowLinePeak) {
  LithoSimulator sim;
  // 40 nm wide line — near the printability limit.
  const auto mask = raster_of({Rect(256, 492, 768, 532)});
  const auto focused = sim.aerial(mask, 0.0);
  const auto defocused = sim.aerial(mask, 40.0);
  EXPECT_GT(focused.at(64, 64), defocused.at(64, 64));
}

TEST(Simulator, NarrowLineVanishesWideLineSurvives) {
  LithoSimulator sim;
  const ProcessCorner worst{"dose-", 0.95, 0.0};
  const auto narrow = raster_of({Rect(256, 496, 768, 520)});  // 24 nm
  const auto wide = raster_of({Rect(256, 472, 768, 544)});    // 72 nm
  EXPECT_EQ(sim.printed(narrow, worst).at(64, 63), 0);
  EXPECT_EQ(sim.printed(wide, worst).at(64, 63), 1);
}

TEST(Simulator, TightSpaceBridgesAtHighDose) {
  LithoSimulator sim;
  // Two 64 nm lines with a 24 nm space between them, centred at y=512.
  const auto mask = raster_of(
      {Rect(256, 424, 768, 500), Rect(256, 524, 768, 600)});
  const ProcessCorner hot{"dose+", 1.05, 0.0};
  const auto printed = sim.printed(mask, hot);
  EXPECT_EQ(printed.at(64, 64), 1);  // the space filled in
  // A comfortable 80 nm space does not bridge.
  const auto safe_mask = raster_of(
      {Rect(256, 396, 768, 472), Rect(256, 552, 768, 628)});
  EXPECT_EQ(sim.printed(safe_mask, hot).at(64, 64), 0);
}

TEST(Simulator, StandardCornersIncludeNominalAndExtremes) {
  const auto corners = standard_corners();
  ASSERT_GE(corners.size(), 3u);
  bool has_nominal = false, has_low = false, has_high = false;
  for (const auto& c : corners) {
    if (c.dose == 1.0 && c.defocus_nm == 0.0) has_nominal = true;
    if (c.dose < 1.0) has_low = true;
    if (c.dose > 1.0) has_high = true;
  }
  EXPECT_TRUE(has_nominal);
  EXPECT_TRUE(has_low);
  EXPECT_TRUE(has_high);
}

TEST(Simulator, RejectsBadConfig) {
  OpticsConfig cfg;
  cfg.sigma_main_nm = -1;
  EXPECT_THROW(LithoSimulator{cfg}, Error);
}

TEST(Simulator, RejectsBadDose) {
  LithoSimulator sim;
  FloatImage img(8, 8, 0.0f);
  EXPECT_THROW(sim.threshold_aerial(img, 0.0), Error);
}

// ---------------------------------------------------------------- oracle --

HotspotOracle default_oracle() { return HotspotOracle{OracleConfig{}}; }

TEST(Oracle, CleanSafePatternIsNotHotspot) {
  const auto oracle = default_oracle();
  // Three comfortable lines.
  const auto mask = raster_of({Rect(0, 300, 1024, 364),
                               Rect(0, 480, 1024, 544),
                               Rect(0, 660, 1024, 724)});
  const auto r = oracle.evaluate(mask);
  EXPECT_FALSE(r.hotspot);
  EXPECT_FALSE(r.pinch);
  EXPECT_FALSE(r.bridge);
}

TEST(Oracle, EmptyClipIsNotHotspot) {
  const auto oracle = default_oracle();
  EXPECT_FALSE(oracle.evaluate(FloatImage(128, 128, 0.0f)).hotspot);
}

TEST(Oracle, TightSpaceIsBridgeHotspot) {
  const auto oracle = default_oracle();
  // Two long lines 28 nm apart through the clip centre.
  const auto mask = raster_of(
      {Rect(0, 420, 1024, 498), Rect(0, 526, 1024, 604)});
  const auto r = oracle.evaluate(mask);
  EXPECT_TRUE(r.hotspot);
  EXPECT_TRUE(r.bridge);
}

TEST(Oracle, NarrowNeckIsPinchHotspot) {
  const auto oracle = default_oracle();
  // Wide wire with a 28 nm neck through the core.
  const auto mask = raster_of({Rect(0, 480, 420, 544),
                               Rect(420, 498, 620, 526),
                               Rect(620, 480, 1024, 544)});
  const auto r = oracle.evaluate(mask);
  EXPECT_TRUE(r.hotspot);
  EXPECT_TRUE(r.pinch);
  EXPECT_GE(r.worst_pinch_frags, 2);
}

TEST(Oracle, VanishingViaIsPinchHotspot) {
  const auto oracle = default_oracle();
  // 56 nm isolated via at the centre — below the 2-D printability limit.
  const auto mask = raster_of({Rect(484, 484, 540, 540)});
  const auto r = oracle.evaluate(mask);
  EXPECT_TRUE(r.hotspot);
  EXPECT_TRUE(r.pinch);
}

TEST(Oracle, LargeViaIsClean) {
  const auto oracle = default_oracle();
  const auto mask = raster_of({Rect(462, 462, 562, 562)});  // 100 nm via
  EXPECT_FALSE(oracle.evaluate(mask).hotspot);
}

TEST(Oracle, ViolationOutsideCoreIgnored) {
  const auto oracle = default_oracle();
  // Tight bridge pair near the top edge, outside the central core
  // (core is the middle 50%: y in [256, 768]).
  const auto mask = raster_of(
      {Rect(0, 830, 1024, 900), Rect(0, 928, 1024, 1000)});
  const auto r = oracle.evaluate(mask);
  EXPECT_FALSE(r.hotspot) << "bridge outside core must not count";
}

TEST(Oracle, WorstCornerIsNamed) {
  const auto oracle = default_oracle();
  const auto mask = raster_of(
      {Rect(0, 420, 1024, 498), Rect(0, 526, 1024, 604)});
  const auto r = oracle.evaluate(mask);
  ASSERT_TRUE(r.hotspot);
  EXPECT_FALSE(r.worst_corner.empty());
}

TEST(Oracle, EvaluateCornerSingleCorner) {
  const auto oracle = default_oracle();
  const auto mask = raster_of(
      {Rect(0, 420, 1024, 498), Rect(0, 526, 1024, 604)});
  // The 28 nm space bridges even at nominal under the default optics.
  const auto nominal = oracle.evaluate_corner(mask, {"nominal", 1.0, 0.0});
  const auto low = oracle.evaluate_corner(mask, {"dose-", 0.80, 0.0});
  EXPECT_TRUE(nominal.bridge);
  EXPECT_FALSE(low.bridge) << "severely underdosed exposure cannot bridge";
}

TEST(Oracle, SmallSliverDoesNotCountAsVanished) {
  const auto oracle = default_oracle();
  // A tiny 16x16 nm speck in the core: area (4 px) < min_shape_px.
  const auto mask = raster_of({Rect(504, 504, 520, 520)});
  EXPECT_FALSE(oracle.evaluate(mask).hotspot);
}

TEST(Oracle, RejectsBadConfig) {
  OracleConfig cfg;
  cfg.core_frac = 0.0;
  EXPECT_THROW(HotspotOracle{cfg}, Error);
  OracleConfig cfg2;
  cfg2.min_shape_px = 0;
  EXPECT_THROW(HotspotOracle{cfg2}, Error);
}

TEST(Oracle, SecondsPerClipIsPositiveAndCached) {
  const double a = HotspotOracle::seconds_per_clip(OracleConfig{});
  const double b = HotspotOracle::seconds_per_clip(OracleConfig{});
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

// Property sweep: line width printability is monotone — if width w prints
// through the worst corner, every wider line prints too.
class LineWidthMonotone : public ::testing::TestWithParam<int> {};

TEST_P(LineWidthMonotone, WiderLinesNeverPinchWhenNarrowerDoesNot) {
  const int w = GetParam();
  const auto oracle = default_oracle();
  auto make_line = [&](int width) {
    return raster_of({Rect(0, 512 - width / 2, 1024, 512 + width / 2)});
  };
  const bool narrow_ok = !oracle.evaluate(make_line(w)).pinch;
  const bool wide_ok = !oracle.evaluate(make_line(w + 16)).pinch;
  if (narrow_ok) {
    EXPECT_TRUE(wide_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LineWidthMonotone,
                         ::testing::Values(24, 32, 40, 48, 56, 64, 72));


// -------------------------------------------------------------- metrology --

TEST(PvBand, EmptyMaskHasNoBand) {
  const LithoSimulator sim;
  const auto pv = pv_band(sim, FloatImage(64, 64, 0.0f));
  EXPECT_EQ(pv.area_px, 0);
  EXPECT_DOUBLE_EQ(pv.area_ratio, 0.0);
}

TEST(PvBand, SafePatternHasThinBand) {
  const LithoSimulator sim;
  const auto mask = raster_of({Rect(0, 440, 1024, 512),
                               Rect(0, 580, 1024, 652)});
  const auto pv = pv_band(sim, mask);
  EXPECT_GT(pv.area_px, 0);          // edges always move a little
  EXPECT_LT(pv.area_ratio, 0.45);    // but the band is a fringe, not the shape
}

TEST(PvBand, MarginalPatternHasWiderBandThanSafe) {
  const LithoSimulator sim;
  const auto safe = raster_of({Rect(0, 476, 1024, 548)});   // 72 nm line
  const auto risky = raster_of({Rect(0, 494, 1024, 530)});  // 36 nm line
  const auto pv_safe = pv_band(sim, safe);
  const auto pv_risky = pv_band(sim, risky);
  EXPECT_GT(pv_risky.area_ratio, pv_safe.area_ratio);
}

TEST(Epe, PerfectPrintHasZeroEpe) {
  geom::ByteImage target(32, 32, 0);
  for (int y = 10; y < 20; ++y) {
    for (int x = 5; x < 28; ++x) target.at(x, y) = 1;
  }
  const auto r = edge_placement_error(target, target);
  EXPECT_EQ(r.outer_px, 0);
  EXPECT_EQ(r.inner_px, 0);
  EXPECT_EQ(r.worst_px, 0);
  EXPECT_FALSE(r.capped);
}

TEST(Epe, UniformShrinkGivesInnerEpe) {
  geom::ByteImage target(32, 32, 0);
  for (int y = 8; y < 24; ++y) {
    for (int x = 8; x < 24; ++x) target.at(x, y) = 1;
  }
  const auto printed = geom::erode(target, 2);
  const auto r = edge_placement_error(target, printed);
  EXPECT_EQ(r.inner_px, 2);
  EXPECT_EQ(r.outer_px, 0);
  EXPECT_EQ(r.worst_px, 2);
}

TEST(Epe, UniformGrowthGivesOuterEpe) {
  geom::ByteImage target(32, 32, 0);
  for (int y = 12; y < 20; ++y) {
    for (int x = 12; x < 20; ++x) target.at(x, y) = 1;
  }
  const auto printed = geom::dilate(target, 3);
  const auto r = edge_placement_error(target, printed);
  EXPECT_EQ(r.outer_px, 3);
  EXPECT_EQ(r.inner_px, 0);
}

TEST(Epe, CapsAtMaxPx) {
  geom::ByteImage target(32, 32, 0);
  target.at(2, 2) = 1;
  geom::ByteImage printed(32, 32, 0);
  printed.at(29, 29) = 1;  // unrelated blob far away
  const auto r = edge_placement_error(target, printed, 4);
  EXPECT_TRUE(r.capped);
  EXPECT_EQ(r.worst_px, 4);
}

}  // namespace
}  // namespace lhd::litho
