// util/check.hpp (LHD_CHECK / LHD_CHECK_MSG / lhd::Error) and the
// annotated locking shims from util/thread_annotations.hpp.
//
// The *static* half of the thread-safety story — that removing an
// LHD_GUARDED_BY annotation or a lock makes the build fail — cannot live
// in a gtest binary (it is a compile-time property); it is asserted by
// the check_thread_safety ctest over tests/fixtures/.

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lhd/util/check.hpp"
#include "lhd/util/thread_annotations.hpp"

namespace lhd {
namespace {

// ---------------------------------------------------------------- LHD_CHECK

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(LHD_CHECK(1 + 1 == 2, "math works"));
  EXPECT_NO_THROW(LHD_CHECK(true));
}

TEST(Check, FailureThrowsLhdError) {
  EXPECT_THROW(LHD_CHECK(false, "boom"), Error);
}

TEST(Check, MessageCarriesExpressionFileLineAndDetail) {
  try {
    LHD_CHECK(2 < 1, "two is not less than one");
    FAIL() << "LHD_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check failed: 2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
    // "file:line" — a colon directly after the file name.
    EXPECT_NE(what.find("test_check.cpp:"), std::string::npos) << what;
  }
}

TEST(Check, NoDetailMessageOmitsSeparator) {
  try {
    LHD_CHECK(false);
    FAIL() << "LHD_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check failed: false"), std::string::npos) << what;
    // The " — detail" suffix only appears when a message was given.
    EXPECT_EQ(what.find("—"), std::string::npos) << what;
  }
}

TEST(Check, CheckMsgStreamsFormattedValues) {
  const int got = 3;
  const int want = 7;
  try {
    LHD_CHECK_MSG(got == want, "got " << got << ", want " << want);
    FAIL() << "LHD_CHECK_MSG did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check failed: got == want"), std::string::npos)
        << what;
    EXPECT_NE(what.find("got 3, want 7"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------- lhd::Error

TEST(Error, CatchableAsStdRuntimeError) {
  bool caught = false;
  try {
    throw Error("wrapped failure");
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "wrapped failure");
  }
  EXPECT_TRUE(caught);
}

TEST(Error, CatchableAsStdException) {
  bool caught = false;
  try {
    LHD_CHECK(false, "via std::exception");
  } catch (const std::exception& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("via std::exception"),
              std::string::npos);
  }
  EXPECT_TRUE(caught);
}

// ----------------------------------------------- thread_annotations shims

// Guarded counter in the exact shape in-tree code uses (annotations and
// all); hammered from many threads to verify the shims actually lock.
class Tally {
 public:
  void bump() LHD_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    ++count_;
  }

  int value() const LHD_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  int count_ LHD_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, MutexLockSerializesWriters) {
  Tally tally;
  constexpr int kThreads = 8;
  constexpr int kBumps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tally] {
      for (int i = 0; i < kBumps; ++i) tally.bump();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tally.value(), kThreads * kBumps);
}

TEST(ThreadAnnotations, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::atomic<bool> second_acquired{false};
  std::thread other([&] {
    if (mu.try_lock()) {
      second_acquired.store(true);
      mu.unlock();
    }
  });
  other.join();
  EXPECT_FALSE(second_acquired.load());  // held here, so try_lock fails
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());  // and succeeds once released
  mu.unlock();
}

TEST(ThreadAnnotations, CondVarWaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (locals cannot carry LHD_GUARDED_BY)

  std::thread waiter([&]() LHD_NO_THREAD_SAFETY_ANALYSIS {
    const MutexLock lock(mu);
    cv.wait(mu, [&]() LHD_NO_THREAD_SAFETY_ANALYSIS { return ready; });
    EXPECT_TRUE(ready);
  });

  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
}

}  // namespace
}  // namespace lhd
