// Tests for lhd/testkit itself: the property runner's seed schedule,
// shrinking and replay; generator validity; the structure-aware mutators;
// hex corpus helpers; fault-injection streams.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/testkit/testkit.hpp"

namespace lhd::testkit {
namespace {

// ---------------------------------------------------------- property runner

TEST(PropertyRunner, PassingPropertyRunsTheFullSchedule) {
  std::size_t calls = 0;
  const auto rep = run_property("always-passes", 16,
                                [&](Rng&, std::size_t) { ++calls; });
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.runs, 16u);
  EXPECT_EQ(calls, 16u);
}

TEST(PropertyRunner, SizeRampCoversMinToMax) {
  PropertyConfig cfg;
  cfg.runs = 10;
  cfg.min_size = 2;
  cfg.max_size = 48;
  std::set<std::size_t> sizes;
  const auto rep = run_property(
      "size-ramp", cfg, [&](Rng&, std::size_t size) { sizes.insert(size); });
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(*sizes.begin(), 2u);
  EXPECT_EQ(*sizes.rbegin(), 48u);
}

TEST(PropertyRunner, FailureShrinksToMinimalSize) {
  // Fails iff size >= 7. A coarse 8-run ramp (2, 8, 15, ...) first hits the
  // failure at size 8, so the shrinker must walk it back down to exactly 7.
  PropertyConfig cfg;
  cfg.runs = 8;
  const auto rep = run_property("shrinks-to-seven", cfg,
                                [](Rng&, std::size_t size) {
                                  if (size >= 7) throw Error("too big");
                                });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.failing_size, 7u);
  EXPECT_GT(rep.original_size, 7u);
  EXPECT_NE(rep.message.find("replay: LHD_PROPERTY_SEED=0x"),
            std::string::npos);
  EXPECT_NE(rep.message.find("too big"), std::string::npos);
}

TEST(PropertyRunner, SameNameSameSchedule) {
  const auto fail_if_big = [](Rng&, std::size_t size) {
    if (size >= 10) throw Error("big");
  };
  const auto a = run_property("deterministic", 16, fail_if_big);
  const auto b = run_property("deterministic", 16, fail_if_big);
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.failing_seed, b.failing_seed);
  EXPECT_EQ(a.failing_size, b.failing_size);
  EXPECT_EQ(a.message, b.message);
}

TEST(PropertyRunner, DifferentNamesUseDifferentSeeds) {
  EXPECT_NE(fnv1a("property-a"), fnv1a("property-b"));
}

TEST(PropertyRunner, EnvReplayRunsExactlyOneCase) {
  ASSERT_EQ(setenv("LHD_PROPERTY_SEED", "0x1234", 1), 0);
  ASSERT_EQ(setenv("LHD_PROPERTY_SIZE", "11", 1), 0);
  std::size_t calls = 0;
  std::uint64_t seen_first = 0;
  std::size_t seen_size = 0;
  const auto rep =
      run_property("replay", 64, [&](Rng& rng, std::size_t size) {
        ++calls;
        seen_first = rng.next_u64();
        seen_size = size;
      });
  unsetenv("LHD_PROPERTY_SEED");
  unsetenv("LHD_PROPERTY_SIZE");
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(seen_size, 11u);
  EXPECT_EQ(seen_first, Rng(0x1234).next_u64());
}

TEST(PropertyRunner, CheckPropertyMacroThrowsPropertyFailure) {
  EXPECT_THROW(CHECK_PROPERTY("macro-fails", 8,
                              [](Rng&, std::size_t) { throw Error("no"); }),
               PropertyFailure);
  // And a passing property sails through.
  CHECK_PROPERTY("macro-passes", 8, [](Rng&, std::size_t) {});
}

// ----------------------------------------------------------------- gen

TEST(Gen, RandomRectRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto r = random_rect(rng, 1024, 1, 200);
    EXPECT_FALSE(r.empty());
    EXPECT_GE(r.xlo, 0);
    EXPECT_GE(r.ylo, 0);
    EXPECT_LT(r.xhi, 1024);
    EXPECT_LT(r.yhi, 1024);
    EXPECT_LE(r.width(), 200);
    EXPECT_LE(r.height(), 200);
  }
}

TEST(Gen, StaircaseRingIsAValidPolygon) {
  CHECK_PROPERTY("staircase-valid", 32, [](Rng& rng, std::size_t size) {
    const auto ring =
        random_staircase_ring(rng, 1 + static_cast<int>(size % 8));
    const geom::Polygon poly(ring);  // ctor validates Manhattan ring
    EXPECT_FALSE(poly.decompose().empty());
  });
}

TEST(Gen, RandomClipStaysInWindow) {
  Rng rng(11);
  const auto clip = random_clip(rng, 20, 2048);
  EXPECT_EQ(clip.window_nm, 2048);
  EXPECT_EQ(clip.rects.size(), 20u);
  for (const auto& r : clip.rects) {
    EXPECT_GE(r.xlo, 0);
    EXPECT_LT(r.xhi, 2048);
  }
}

TEST(Gen, RandomLibraryIsReaderClean) {
  CHECK_PROPERTY("random-library-parses", 24, [](Rng& rng, std::size_t size) {
    const auto lib = random_library(rng, size);
    const auto bytes = gds::write_bytes(lib);
    const auto round = gds::read_bytes(bytes);
    EXPECT_EQ(round.structures().size(), lib.structures().size());
    // TOP must flatten without throwing.
    (void)round.flatten_layer("TOP", 1);
  });
}

TEST(Gen, HexRoundTripsAndToleratesComments) {
  Rng rng(3);
  const auto bytes = random_bytes(rng, 100);
  EXPECT_EQ(from_hex(to_hex(bytes)), bytes);
  EXPECT_EQ(from_hex("# comment line\n0a 0b # trailing\n0c"),
            (std::vector<std::uint8_t>{0x0A, 0x0B, 0x0C}));
  EXPECT_THROW(from_hex("0a 0"), Error);   // odd digit count
  EXPECT_THROW(from_hex("zz"), Error);     // invalid character
}

// ----------------------------------------------------------------- mutate

std::vector<std::uint8_t> base_stream() {
  Rng rng(42);
  return gds::write_bytes(random_library(rng, 12));
}

TEST(Mutate, RecordOffsetsWalkTheFraming) {
  const auto bytes = base_stream();
  const auto offsets = record_offsets(bytes);
  ASSERT_GT(offsets.size(), 6u);
  EXPECT_EQ(offsets.front(), 0u);
  // Each offset starts a well-formed header inside the stream.
  for (const std::size_t at : offsets) {
    ASSERT_LE(at + 4, bytes.size());
    const auto total = static_cast<std::size_t>(bytes[at]) * 256 +
                       bytes[at + 1];
    EXPECT_GE(total, 4u);
    EXPECT_EQ(total % 2, 0u);
    EXPECT_LE(at + total, bytes.size());
  }
}

TEST(Mutate, EveryStrategyProducesParseableOrRejectedBytes) {
  const auto base = base_stream();
  for (std::uint8_t m = 0; m < static_cast<std::uint8_t>(GdsMutation::kCount);
       ++m) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      Rng rng(seed * 977 + m);
      const auto mutated =
          apply_mutation(base, static_cast<GdsMutation>(m), rng);
      try {
        const auto lib = gds::read_bytes(mutated);
        (void)gds::write_bytes(lib);  // what parses must re-serialize
      } catch (const Error&) {
        // Rejection is the expected outcome; crashing is the bug.
      }
    }
  }
}

TEST(Mutate, MutationsChangeTheBytes) {
  const auto base = base_stream();
  Rng rng(5);
  std::size_t changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (mutate_gds(base, rng) != base) ++changed;
  }
  EXPECT_GT(changed, 45u);  // near-certain; guards a no-op mutator bug
}

TEST(Mutate, DepthBombParsesButRefusesToFlatten) {
  const auto bytes = sref_depth_bomb(70);
  const auto lib = gds::read_bytes(bytes);
  EXPECT_EQ(lib.structures().size(), 71u);
  EXPECT_THROW((void)lib.flatten_layer("S0", 1), Error);
  // A chain inside the depth budget flattens fine.
  const auto ok = gds::read_bytes(sref_depth_bomb(10));
  EXPECT_EQ(ok.flatten_layer("S0", 1).size(), 1u);
}

TEST(Mutate, FanoutBombWithinCapFlattens) {
  const auto lib = gds::read_bytes(aref_fanout_bomb(16, 16));
  EXPECT_EQ(lib.flatten_layer("TOP", 1).size(), 256u);
}

// ----------------------------------------------------------------- fault

TEST(Fault, FaultyIStreamFailsAtTheConfiguredByte) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
  FaultyIStream in(bytes, 3);
  char buf[5] = {};
  in.read(buf, 5);
  EXPECT_TRUE(in.fail());
  EXPECT_EQ(in.gcount(), 3);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(in.bytes_served(), 3u);
}

TEST(Fault, FaultyIStreamBeyondEndNeverFails) {
  const std::vector<std::uint8_t> bytes{9, 8};
  FaultyIStream in(bytes, 100);
  char buf[2] = {};
  in.read(buf, 2);
  EXPECT_FALSE(in.fail());
  EXPECT_EQ(buf[1], 8);
}

TEST(Fault, FaultyOStreamStopsAccepting) {
  FaultyOStream out(4);
  out.write("abcdef", 6);
  EXPECT_TRUE(out.fail());
  EXPECT_EQ(out.bytes().size(), 4u);
  EXPECT_EQ(out.bytes()[3], static_cast<std::uint8_t>('d'));
}

TEST(Fault, ForEachFailPointCoversEveryPrefix) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  std::size_t calls = 0;
  for_each_fail_point(bytes, [&](std::istream&, std::size_t fail_at) {
    EXPECT_EQ(fail_at, calls);
    ++calls;
  });
  EXPECT_EQ(calls, 4u);
}

}  // namespace
}  // namespace lhd::testkit
