// Property-based suites over the parity-critical production kernels:
// serial-vs-parallel scan equality, fast-vs-naive DCT, raster/boolean
// metamorphic identities, and serialization fixpoints. Every failure
// prints a reproducing LHD_PROPERTY_SEED line (see docs/TESTING.md).

#include <gtest/gtest.h>

#include <algorithm>

#include "lhd/core/scan.hpp"
#include "lhd/data/dataset.hpp"
#include "lhd/feature/dct.hpp"
#include "lhd/gds/model.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/geom/raster.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/testkit/testkit.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::testkit {
namespace {

using geom::Rect;

// ------------------------------------------------------------ scan parity

TEST(Property, ScanParityAcrossThreadCounts) {
  ThreadPool pool(4);
  const DensityCutDetector detector(0.05f);
  // 64 random layouts; `size` scales the rect soup so shrinking narrows a
  // failure to the smallest layout that still diverges.
  CHECK_PROPERTY("scan-parity", 64, [&](Rng& rng, std::size_t size) {
    const auto rects = random_rects(rng, 8 + size * 8, 8192, 16, 900);
    const core::ChipIndex chip(rects);
    core::ScanConfig cfg;
    cfg.window_nm = 1024;
    cfg.stride_nm = 512;
    cfg.skip_empty = rng.next_bool();
    expect_scan_parity(chip, detector, cfg, {2, 3, 8}, pool);
  });
}

TEST(Property, DedupScanParityAcrossThreadsCapacitiesAndBatches) {
  ThreadPool pool(4);
  const DensityCutDetector detector(0.05f);
  // Density score is invariant under rect order and whole-pattern
  // translation — the precondition under which the dedup path promises
  // results bit-identical to the naive scan. Capacity 0 (memoization off)
  // and 1 (constant thrash) are the eviction edge cases; batch 1 flushes
  // every miss immediately.
  CHECK_PROPERTY("dedup-scan-parity", 24, [&](Rng& rng, std::size_t size) {
    const auto rects = random_rects(rng, 8 + size * 8, 8192, 16, 900);
    const core::ChipIndex chip(rects);
    core::ScanConfig cfg;
    cfg.window_nm = 1024;
    cfg.stride_nm = 512;
    cfg.skip_empty = rng.next_bool();
    expect_dedup_scan_parity(chip, detector, cfg, {1, 2, 8}, {0, 1, 4096},
                             {1, 32}, pool);
  });
}

TEST(Property, HierarchicalScanParityOnSynthChips) {
  ThreadPool pool(4);
  const DensityCutDetector detector(0.05f);
  // The synth generator's tile_variants knob is the honest testbed: 0 makes
  // every tile a distinct cell (no reuse — replay degenerates to the
  // stitch bands), 1 makes the chip one repeated cell (maximal reuse), 4
  // repeats a small macro. Parity must hold bit for bit in all regimes,
  // across thread counts and dedup on/off (the oracle's inner matrix).
  CHECK_PROPERTY("hier-scan-parity-synth", 12, [&](Rng& rng,
                                                   std::size_t size) {
    synth::StyleConfig style;
    const int tiles = 2 + static_cast<int>(size % 3);
    static constexpr int kVariants[] = {0, 1, 4};
    const int variants = kVariants[rng.next_below(3)];
    const auto lib = synth::build_chip(style, tiles, tiles,
                                       rng.next_below(1u << 20), variants);
    core::ScanConfig cfg;
    cfg.window_nm = 1024;
    cfg.stride_nm = 512;
    cfg.skip_empty = rng.next_bool();
    expect_hierarchical_scan_parity(lib, "TOP", synth::kChipLayer, detector,
                                    cfg, {1, 2, 8}, pool);
  });
}

TEST(Property, HierarchicalScanParityOnRandomLibraries) {
  ThreadPool pool(4);
  const DensityCutDetector detector(0.05f);
  // random_library places leaves through every mirror × angle combination
  // and through AREF grids — the transform/replay paths a tiled synth chip
  // (identity transforms only) never exercises. Loose TOP-level geometry
  // is added on the scanned layer so windows mix instance geometry with
  // top-frame shapes (TOP itself becomes one more "instance" at identity).
  CHECK_PROPERTY("hier-scan-parity-gds", 16, [&](Rng& rng,
                                                 std::size_t size) {
    auto lib = random_library(rng, 4 + size);
    gds::Structure* top = lib.find("TOP");
    const std::size_t loose = rng.next_below(3);
    for (std::size_t i = 0; i < loose; ++i) {
      gds::Boundary b;
      b.layer = 1;
      b.polygon = geom::Polygon::from_rect(
          random_rect(rng, 8000, 16, 900).shifted(-4000, -4000));
      top->add(b);
    }
    core::ScanConfig cfg;
    cfg.window_nm = 1024;
    cfg.stride_nm = 512;
    cfg.skip_empty = rng.next_bool();
    expect_hierarchical_scan_parity(lib, "TOP", 1, detector, cfg, {1, 3},
                                    pool);
  });
}

// ------------------------------------------------------ transform algebra

TEST(Property, TransformComposeMatchesSequentialApplication) {
  // Exhaustive over the D4 × D4 orientation pairs (the mirrored-inner
  // rotation flip in compose() is easy to get wrong and only shows up when
  // outer.mirror_x && inner.angle != 0), randomized over origins/points.
  CHECK_PROPERTY("transform-compose", 48, [](Rng& rng, std::size_t) {
    const auto coord = [&rng](std::int64_t lo, std::int64_t hi) {
      return static_cast<geom::Coord>(rng.next_int(lo, hi));
    };
    for (const bool outer_mirror : {false, true}) {
      for (int outer_angle = 0; outer_angle < 360; outer_angle += 90) {
        for (const bool inner_mirror : {false, true}) {
          for (int inner_angle = 0; inner_angle < 360; inner_angle += 90) {
            gds::Transform outer;
            outer.mirror_x = outer_mirror;
            outer.angle_deg = outer_angle;
            outer.origin = {coord(-20000, 20000), coord(-20000, 20000)};
            gds::Transform inner;
            inner.mirror_x = inner_mirror;
            inner.angle_deg = inner_angle;
            inner.origin = {coord(-20000, 20000), coord(-20000, 20000)};
            const gds::Transform composed = outer.compose(inner);
            for (int k = 0; k < 4; ++k) {
              const geom::Point p{coord(-30000, 30000), coord(-30000, 30000)};
              const geom::Point want = outer.apply(inner.apply(p));
              const geom::Point got = composed.apply(p);
              if (!(got == want)) {
                std::ostringstream os;
                os << "compose(outer{m=" << outer_mirror
                   << ",a=" << outer_angle << "}, inner{m=" << inner_mirror
                   << ",a=" << inner_angle << "}) maps (" << p.x << "," << p.y
                   << ") to (" << got.x << "," << got.y << "), sequential "
                   << "application gives (" << want.x << "," << want.y << ")";
                throw PropertyFailure(os.str());
              }
            }
          }
        }
      }
    }
  });
}

TEST(Property, TransformInverseRoundTripsPoints) {
  CHECK_PROPERTY("transform-inverse", 48, [](Rng& rng, std::size_t) {
    const auto coord = [&rng](std::int64_t lo, std::int64_t hi) {
      return static_cast<geom::Coord>(rng.next_int(lo, hi));
    };
    for (const bool mirror : {false, true}) {
      for (int angle = 0; angle < 360; angle += 90) {
        gds::Transform t;
        t.mirror_x = mirror;
        t.angle_deg = angle;
        t.origin = {coord(-20000, 20000), coord(-20000, 20000)};
        const gds::Transform inv = t.inverse();
        for (int k = 0; k < 4; ++k) {
          const geom::Point p{coord(-30000, 30000), coord(-30000, 30000)};
          if (!(inv.apply(t.apply(p)) == p) || !(t.apply(inv.apply(p)) == p)) {
            std::ostringstream os;
            os << "inverse round-trip failed for {m=" << mirror
               << ",a=" << angle << "} at (" << p.x << "," << p.y << ")";
            throw PropertyFailure(os.str());
          }
          // Rects round-trip too: D4 maps half-open cell sets exactly.
          const Rect r(p.x, p.y, p.x + coord(1, 500), p.y + coord(1, 500));
          if (!(inv.apply(t.apply(r)) == r)) {
            std::ostringstream os;
            os << "rect inverse round-trip failed for {m=" << mirror
               << ",a=" << angle << "}";
            throw PropertyFailure(os.str());
          }
        }
      }
    }
  });
}

// ------------------------------------------------------------- DCT parity

TEST(Property, DctMatchesNaiveReference) {
  CHECK_PROPERTY("dct-parity", 64, [](Rng& rng, std::size_t size) {
    // Cycle through the block sizes the feature extractor meets in
    // practice; 8 is the production default.
    static constexpr int kSides[] = {4, 8, 16};
    const int n = kSides[size % 3];
    expect_dct_parity(random_block(rng, n), n);
  });
}

TEST(Property, DctOfConstantBlockIsDcOnly) {
  CHECK_PROPERTY("dct-dc-only", 16, [](Rng& rng, std::size_t) {
    const int n = 8;
    const auto level = static_cast<float>(rng.next_double());
    std::vector<float> block(64, level), out(64);
    feature::dct2d(block.data(), out.data(), n);
    // DC = n * level under orthonormal scaling; every AC term ~ 0.
    EXPECT_NEAR(out[0], n * level, 1e-4);
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_NEAR(out[i], 0.0f, 1e-4);
    }
  });
}

// ------------------------------------------- raster metamorphic identities

TEST(Property, TranslateThenRasterizeEqualsRasterizeThenShift) {
  CHECK_PROPERTY("raster-translate", 48, [](Rng& rng, std::size_t size) {
    const geom::Coord window = 1024, pixel = 8;
    // Keep rects inside the window even after the shift.
    auto rects = random_rects(rng, 2 + size, window / 2, 4, 200);
    const auto dx_px = static_cast<geom::Coord>(rng.next_int(0, 32));
    const auto dy_px = static_cast<geom::Coord>(rng.next_int(0, 32));
    auto shifted = rects;
    for (auto& r : shifted) {
      r = Rect(r.xlo + dx_px * pixel, r.ylo + dy_px * pixel,
               r.xhi + dx_px * pixel, r.yhi + dy_px * pixel);
    }
    const auto base = geom::rasterize(rects, window, pixel);
    const auto moved = geom::rasterize(shifted, window, pixel);
    for (int y = 0; y < base.height(); ++y) {
      for (int x = 0; x < base.width(); ++x) {
        const float want = base.get_or(x - dx_px, y - dy_px, 0.0f);
        if (moved.at(x, y) != want) {
          std::ostringstream os;
          os << "pixel (" << x << "," << y << ") = " << moved.at(x, y)
             << ", want " << want << " after shift (" << dx_px << ","
             << dy_px << ") px";
          throw PropertyFailure(os.str());
        }
      }
    }
  });
}

TEST(Property, FlipXIsAnInvolutionOnRasters) {
  CHECK_PROPERTY("raster-flip-involution", 32,
                 [](Rng& rng, std::size_t size) {
    const auto rects = random_rects(rng, 2 + size, 512, 4, 120);
    const auto img = geom::rasterize(rects, 512, 8);
    EXPECT_EQ(geom::flip_x(geom::flip_x(img)), img);
    EXPECT_EQ(geom::flip_y(geom::flip_y(img)), img);
  });
}

// --------------------------------------------- boolean (union_area) identities

TEST(Property, UnionAreaIsTranslationInvariant) {
  CHECK_PROPERTY("union-area-translate", 48, [](Rng& rng, std::size_t size) {
    auto rects = random_rects(rng, 1 + size, 4096, 2, 700);
    const auto area = geom::union_area(rects);
    const auto dx = static_cast<geom::Coord>(rng.next_int(-5000, 5000));
    const auto dy = static_cast<geom::Coord>(rng.next_int(-5000, 5000));
    for (auto& r : rects) {
      r = Rect(r.xlo + dx, r.ylo + dy, r.xhi + dx, r.yhi + dy);
    }
    EXPECT_EQ(geom::union_area(rects), area);
  });
}

TEST(Property, UnionAreaIsPermutationInvariantAndBounded) {
  CHECK_PROPERTY("union-area-permute", 48, [](Rng& rng, std::size_t size) {
    auto rects = random_rects(rng, 1 + size, 2048, 2, 500);
    const auto area = geom::union_area(rects);
    std::int64_t sum = 0;
    for (const auto& r : rects) sum += r.area();
    EXPECT_LE(area, sum);          // union never exceeds the naive sum
    EXPECT_GT(area, 0);            // generators never emit empty rects
    rng.shuffle(rects);
    EXPECT_EQ(geom::union_area(rects), area);
  });
}

// ------------------------------------------------------ serialization fixpoints

TEST(Property, GdsWriteReadWriteFixpoint) {
  CHECK_PROPERTY("gds-fixpoint", 48, [](Rng& rng, std::size_t size) {
    expect_gds_fixpoint(random_library(rng, size));
  });
}

TEST(Property, DatasetSaveLoadSaveFixpoint) {
  CHECK_PROPERTY("dataset-fixpoint", 32, [](Rng& rng, std::size_t size) {
    data::Dataset ds("prop");
    for (std::size_t i = 0; i < 1 + size / 2; ++i) {
      ds.add(random_clip(rng, 1 + rng.next_below(12)));
    }
    expect_dataset_fixpoint(ds);
  });
}

// ------------------------------------------------------------- nn kernels

TEST(Property, NnKernelParityFastVsReference) {
  CHECK_PROPERTY("nn-kernel-parity", 32, [](Rng& rng, std::size_t size) {
    expect_nn_kernel_parity(rng, size);
  });
}

}  // namespace
}  // namespace lhd::testkit
