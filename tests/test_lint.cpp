// lhd::lint self-tests: the lexer's lexical-grammar corner cases, one
// positive and one negative fixture per shipped rule (R1–R6), the inline
// suppression and baseline mechanisms, and the registry/doc contract
// (default_rules() ships exactly kAllRuleIds). Fixtures are inline string
// literals run through the same make_file_context/run_rules entry points
// the tools/lhd_lint driver uses.

#include <gtest/gtest.h>

#include <sstream>

#include "lhd/lint/analyzer.hpp"

namespace lint = lhd::lint;

namespace {

struct Src {
  std::string path;
  std::string text;
};

lint::Summary run(const std::vector<Src>& sources,
                  const std::string& baseline_text = {}) {
  lint::RepoContext repo;
  for (const Src& s : sources) {
    repo.files.push_back(lint::make_file_context(s.path, s.text));
  }
  std::istringstream bin(baseline_text);
  return lint::run_rules(repo, lint::default_rules(), lint::parse_baseline(bin));
}

std::vector<lint::Finding> findings_for(const lint::Summary& s,
                                        const std::string& rule) {
  std::vector<lint::Finding> out;
  for (const lint::Finding& f : s.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// ------------------------------------------------------------- lexer ------

TEST(LintLexer, CommentsBecomeSingleTokensAndCodeInThemIsInert) {
  const auto toks = lint::lex(
      "int a; // std::mutex here is prose\n"
      "/* and rand() in a\n   block comment */ int b;\n");
  int comments = 0, idents = 0;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::Comment) ++comments;
    if (t.kind == lint::TokKind::Identifier) ++idents;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(idents, 4);  // int a int b — no mutex/rand identifiers
  // The block comment is one token starting at line 2; `int b` follows on
  // line 3.
  EXPECT_EQ(toks.back().text, ";");
  EXPECT_EQ(toks.back().line, 3);
}

TEST(LintLexer, StringAndCharLiteralContentsAreNotTokens) {
  const auto toks = lint::lex(
      "const char* s = \"std::mutex \\\" rand()\";\n"
      "char c = '\\'';\n"
      "auto r = R\"xy(time(nullptr) )\" )xy\";\n"
      "auto u = u8\"x\";\n");
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::Identifier) {
      EXPECT_NE(t.text, "mutex");
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "time");
      EXPECT_NE(t.text, "u8");  // prefix glued onto its literal
    }
  }
  int strings = 0;
  for (const auto& t : toks) strings += t.kind == lint::TokKind::String;
  EXPECT_EQ(strings, 3);
}

TEST(LintLexer, DirectiveAndHeaderNameTokens) {
  const auto toks = lint::lex(
      "#pragma once\n"
      "#include \"lhd/core/scan.hpp\"\n"
      "#include <vector>\n"
      "#define FOO bar\n");
  std::vector<std::string> directives, headers;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::Directive) directives.push_back(t.text);
    if (t.kind == lint::TokKind::HeaderName) headers.push_back(t.text);
  }
  EXPECT_EQ(directives,
            (std::vector<std::string>{"pragma", "include", "include",
                                      "define"}));
  EXPECT_EQ(headers, (std::vector<std::string>{"\"lhd/core/scan.hpp\"",
                                               "<vector>"}));
}

TEST(LintLexer, BackslashNewlineSplicesEverywhere) {
  // `ra\<newline>nd` is the single identifier `rand`; a spliced `//`
  // comment swallows the next line.
  const auto toks = lint::lex("ra\\\nnd(); // comment \\\nstill comment\nx;\n");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, lint::TokKind::Identifier);
  EXPECT_EQ(toks[0].text, "rand");
  int idents = 0;
  for (const auto& t : toks) idents += t.kind == lint::TokKind::Identifier;
  EXPECT_EQ(idents, 2);  // rand, x — "still comment" stayed in the comment
}

TEST(LintLexer, ScopeArrowAndNumbersLexAsSingleTokens) {
  const auto toks =
      lint::lex("std::size_t n = 1'000'000; double d = 1.5e-3; p->f();");
  bool scope = false, arrow = false;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::Punct && t.text == "::") scope = true;
    // `->` must be one token: the determinism and decoder-bounds rules
    // dispatch on it to recognize member access.
    if (t.kind == lint::TokKind::Punct && t.text == "->") arrow = true;
    if (t.kind == lint::TokKind::Number) {
      EXPECT_TRUE(t.text == "1'000'000" || t.text == "1.5e-3") << t.text;
    }
  }
  EXPECT_TRUE(scope);
  EXPECT_TRUE(arrow);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
}

TEST(LintLexer, UnterminatedConstructsDoNotLoseFollowingLines) {
  // An unterminated string closes at end of line; the next line still
  // lexes (graceful degradation, not silence).
  const auto toks = lint::lex("const char* s = \"oops\nint после;\nrand();\n");
  bool saw_rand = false;
  for (const auto& t : toks) {
    saw_rand |= t.kind == lint::TokKind::Identifier && t.text == "rand";
  }
  EXPECT_TRUE(saw_rand);
}

// ------------------------------------------------- R1: mutex-guards ------

TEST(LintRuleMutexGuards, PositiveUnannotatedMutexMemberInCoreHeader) {
  const auto s = run({{"src/lhd/core/widget.hpp",
                       "#pragma once\n"
                       "#include \"lhd/util/thread_annotations.hpp\"\n"
                       "class W {\n"
                       "  lhd::Mutex mutex_;\n"
                       "  int unguarded_ = 0;\n"
                       "};\n"}});
  const auto f = findings_for(s, "mutex-guards");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/lhd/core/widget.hpp");
  EXPECT_EQ(f[0].line, 4);
}

TEST(LintRuleMutexGuards, NegativeAnnotatedOrOutOfScope) {
  const auto s = run(
      {// Annotated: compliant.
       {"src/lhd/obs/counter.hpp",
        "#pragma once\n"
        "class C {\n"
        "  mutable Mutex mutex_ LHD_ACQUIRED_BEFORE(other_);\n"
        "  long value_ LHD_GUARDED_BY(mutex_) = 0;\n"
        "};\n"},
       // Prose mention only.
       {"src/lhd/util/notes.hpp",
        "#pragma once\n// a lhd::Mutex member would need LHD_GUARDED_BY\n"},
       // Outside the rule's core/obs/util scope.
       {"src/lhd/nn/cache.hpp",
        "#pragma once\nstruct S { lhd::Mutex m_; };\n"}});
  EXPECT_TRUE(findings_for(s, "mutex-guards").empty());
}

// -------------------------------------------- R2: raw-sync-primitive ------

TEST(LintRuleRawSync, PositiveStdPrimitivesInSrc) {
  const auto s = run({{"src/lhd/data/pool.cpp",
                       "#include <mutex>\n"
                       "std::mutex g_m;\n"
                       "void f() { std::lock_guard<std::mutex> l(g_m); }\n"}});
  // line 2, plus lock_guard and its template argument on line 3.
  EXPECT_EQ(findings_for(s, "raw-sync-primitive").size(), 3u);
}

TEST(LintRuleRawSync, NegativeCommentsStringsShimAndNonSrc) {
  const auto s = run(
      {{"src/lhd/util/thread_annotations.hpp",  // the shim itself is exempt
        "#pragma once\nusing Inner = std::mutex;\n"},
       {"src/lhd/core/scan2.cpp",
        "// std::mutex in prose\nconst char* s = \"std::mutex\";\n"},
       {"tools/lhd_lint/main2.cpp", "std::mutex m;\n"}});  // outside src/lhd
  EXPECT_TRUE(findings_for(s, "raw-sync-primitive").empty());
}

// ------------------------------------------------------ R3: layering ------

TEST(LintRuleLayering, PositiveUpwardAndCrossPeerIncludes) {
  const auto s = run({{"src/lhd/geom/shape.cpp",
                       "#include \"lhd/nn/gemm.hpp\"\n"},       // upward
                      {"src/lhd/ml/svm.cpp",
                       "#include \"lhd/nn/layers.hpp\"\n"},     // peer (rank tie)
                      {"src/lhd/util/misc.cpp",
                       "#include \"lhd/core/scan.hpp\"\n"}});   // upward
  const auto f = findings_for(s, "layering");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].file, "src/lhd/geom/shape.cpp");
  EXPECT_EQ(f[0].line, 1);
}

TEST(LintRuleLayering, NegativeDownwardSameModuleAndSystemIncludes) {
  const auto s = run({{"src/lhd/core/scan2.cpp",
                       "#include \"lhd/nn/gemm.hpp\"\n"      // downward
                       "#include \"lhd/core/detect.hpp\"\n"  // same module
                       "#include <vector>\n"},
                      {"src/lhd/nn/gemm2.cpp",
                       "#include \"lhd/util/check.hpp\"\n"}});
  EXPECT_TRUE(findings_for(s, "layering").empty());
}

TEST(LintRuleLayering, ExecRankSitsBetweenNnAndCore) {
  // Pin the exec module's place in the layering order: nn (and below) may
  // not include exec, exec may not include core, while exec -> nn/util,
  // core -> exec, and testkit -> exec are all legal. Findings come back in
  // file insertion order.
  const auto s = run({{"src/lhd/exec/backends.cpp",
                       "#include \"lhd/nn/gemm.hpp\"\n"
                       "#include \"lhd/util/thread_pool.hpp\"\n"},  // legal
                      {"src/lhd/core/scan2.cpp",
                       "#include \"lhd/exec/backend.hpp\"\n"},      // legal
                      {"src/lhd/testkit/harness2.cpp",
                       "#include \"lhd/exec/registry.hpp\"\n"},     // legal
                      {"src/lhd/exec/bad.cpp",
                       "#include \"lhd/core/scan.hpp\"\n"},         // upward
                      {"src/lhd/nn/bad.cpp",
                       "#include \"lhd/exec/backend.hpp\"\n"}});    // upward
  const auto f = findings_for(s, "layering");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].file, "src/lhd/exec/bad.cpp");
  EXPECT_EQ(f[1].file, "src/lhd/nn/bad.cpp");
}

// --------------------------------------------------- R4: determinism ------

TEST(LintRuleDeterminism, PositiveEntropyAndWallClockInResultModules) {
  const auto s = run({{"src/lhd/core/scan2.cpp",
                       "int f() { return rand(); }\n"},
                      {"src/lhd/nn/init.cpp",
                       "#include <random>\n"
                       "unsigned g() { return std::random_device{}(); }\n"},
                      {"src/lhd/feature/stamp.cpp",
                       "long h() { return time(nullptr); }\n"}});
  EXPECT_EQ(findings_for(s, "determinism").size(), 3u);
}

TEST(LintRuleDeterminism, ExecModuleIsCovered) {
  // Backend scheduling decisions feed result-bearing scans, so exec is in
  // the determinism rule's module list.
  const auto s = run({{"src/lhd/exec/sched.cpp",
                       "int pick() { return rand(); }\n"}});
  EXPECT_EQ(findings_for(s, "determinism").size(), 1u);
}

TEST(LintRuleDeterminism, NegativeMembersPlainWordsAndExemptModules) {
  const auto s = run(
      {// Member access is the object's own API, not libc.
       {"src/lhd/core/report.cpp",
        "double f(const Row& r) { return r.time(); }\n"
        "int g(Row* r) { return r->clock(); }\n"},
       // `time` as a variable (no call) is an everyday word.
       {"src/lhd/data/fields.cpp", "struct T { long time; long clock; };\n"},
       // obs/util own the wall clock (Stopwatch, ScopedTimer).
       {"src/lhd/obs/timer2.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n"},
       // testkit seeding may touch entropy.
       {"src/lhd/testkit/seed.cpp", "unsigned s = std::random_device{}();\n"}});
  EXPECT_TRUE(findings_for(s, "determinism").empty());
}

// ------------------------------------------------ R5: decoder-bounds ------

TEST(LintRuleDecoderBounds, PositiveRawReserveAndResizeInDecoders) {
  const auto s = run({{"src/lhd/gds/reader.cpp",
                       "void f(std::vector<int>& v, unsigned n) {\n"
                       "  v.reserve(n);\n"
                       "}\n"},
                      {"src/lhd/nn/serialize.cpp",
                       "void g(Blob* b, unsigned n) { b->resize(n); }\n"}});
  const auto f = findings_for(s, "decoder-bounds");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].file, "src/lhd/nn/serialize.cpp");
}

TEST(LintRuleDecoderBounds, NegativeBoundedHelpersAndNonDecoderFiles) {
  const auto s = run(
      {{"src/lhd/gds/reader.cpp",
        "#include \"lhd/util/bounded.hpp\"\n"
        "void f(std::vector<int>& v, unsigned n) {\n"
        "  lhd::bounded_reserve(v, n, 4096);\n"
        "  lhd::bounded_resize(v, n, 4096);\n"
        "}\n"},
       // reserve/resize elsewhere is ordinary capacity management.
       {"src/lhd/core/scan2.cpp",
        "void g(std::vector<int>& v) { v.reserve(8); v.resize(8); }\n"}});
  EXPECT_TRUE(findings_for(s, "decoder-bounds").empty());
}

// ----------------------------------------------- R6: header-hygiene ------

TEST(LintRuleHeaderHygiene, PositiveMissingPragmaOnceAndStrayThread) {
  const auto s = run({{"src/lhd/geom/point2.hpp",
                       "// missing the guard\nstruct P { int x; };\n"},
                      {"src/lhd/core/spawn.cpp",
                       "#include <thread>\n"
                       "void f() { std::thread t([]{}); t.join(); }\n"}});
  const auto f = findings_for(s, "header-hygiene");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].file, "src/lhd/core/spawn.cpp");  // sorted by file
  EXPECT_EQ(f[1].line, 1);
}

TEST(LintRuleHeaderHygiene, NegativeGuardedHeaderAndThreadPoolExemption) {
  const auto s = run({{"src/lhd/geom/point2.hpp",
                       "#pragma once\nstruct P { int x; };\n"},
                      {"src/lhd/util/thread_pool.cpp",
                       "#include <thread>\nstd::thread spawn();\n"},
                      // A .cpp needs no include guard.
                      {"src/lhd/geom/point2.cpp", "int x;\n"}});
  EXPECT_TRUE(findings_for(s, "header-hygiene").empty());
}

// ------------------------------------------ suppressions and baseline ------

TEST(LintSuppression, SameLineAndStandaloneCommentMarkers) {
  const auto s = run(
      {{"src/lhd/core/a.cpp",
        "int f() { return rand(); }  // lhd-lint: allow(determinism) seeded upstream\n"},
       {"src/lhd/core/b.cpp",
        "// lhd-lint: allow(determinism) -- replay harness, wall time ok\n"
        "long g() { return time(nullptr); }\n"}});
  EXPECT_TRUE(s.findings.empty());
  EXPECT_EQ(s.suppressed_inline, 2u);
}

TEST(LintSuppression, WrongRuleIdDoesNotSuppress) {
  const auto s = run({{"src/lhd/core/a.cpp",
                       "int f() { return rand(); }  // lhd-lint: allow(layering)\n"}});
  EXPECT_EQ(findings_for(s, "determinism").size(), 1u);
  EXPECT_EQ(s.suppressed_inline, 0u);
}

TEST(LintBaseline, BudgetAbsorbsExactlyTheListedCount) {
  const std::string source =
      "int f() { return rand(); }\n"
      "int g() { return rand(); }\n";
  // Baseline of 1: the first finding (line order) is absorbed, the second
  // still fails — new debt in a baselined file is visible.
  const auto s = run({{"src/lhd/core/a.cpp", source}},
                     "# comment line\n\ndeterminism src/lhd/core/a.cpp 1\n");
  const auto f = findings_for(s, "determinism");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(s.suppressed_baseline, 1u);
  // Count defaults to 1 when omitted.
  std::istringstream bin("determinism src/lhd/core/a.cpp\n");
  EXPECT_EQ(lint::parse_baseline(bin).allowed.at(
                {"determinism", "src/lhd/core/a.cpp"}),
            1);
}

TEST(LintBaseline, RenderRoundTripsThroughParse) {
  const auto s = run({{"src/lhd/core/a.cpp",
                       "int f() { return rand(); }\nint g() { return rand(); }\n"}});
  std::istringstream bin(lint::render_baseline(s));
  const auto parsed = lint::parse_baseline(bin);
  ASSERT_EQ(parsed.allowed.size(), 1u);
  EXPECT_EQ(parsed.allowed.at({"determinism", "src/lhd/core/a.cpp"}), 2);
  // And applying the round-tripped baseline silences everything.
  std::istringstream bin2(lint::render_baseline(s));
  lint::RepoContext repo;
  repo.files.push_back(lint::make_file_context(
      "src/lhd/core/a.cpp",
      "int f() { return rand(); }\nint g() { return rand(); }\n"));
  const auto s2 =
      lint::run_rules(repo, lint::default_rules(), lint::parse_baseline(bin2));
  EXPECT_TRUE(s2.findings.empty());
  EXPECT_EQ(s2.suppressed_baseline, 2u);
}

// --------------------------------------------------- registry / output ----

TEST(LintRegistry, DefaultRulesShipExactlyTheDocumentedIds) {
  const auto rules = lint::default_rules();
  std::vector<std::string> shipped;
  for (const auto& r : rules) {
    shipped.push_back(r->id());
    EXPECT_STRNE(r->description(), "");
  }
  std::vector<std::string> documented(std::begin(lint::kAllRuleIds),
                                      std::end(lint::kAllRuleIds));
  EXPECT_EQ(shipped, documented);
}

TEST(LintOutput, HumanAndJsonCarryFileLineAndRuleId) {
  const auto s = run({{"src/lhd/core/a.cpp", "int f() { return rand(); }\n"}});
  const std::string human = lint::render_human(s);
  EXPECT_NE(human.find("src/lhd/core/a.cpp:1: [determinism]"),
            std::string::npos);
  const std::string json = lint::render_json(s);
  EXPECT_NE(json.find("\"rule\":\"determinism\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/lhd/core/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"lhd.lint/1\""), std::string::npos);
}

TEST(LintContext, ModuleAndHeaderDerivation) {
  const auto f = lint::make_file_context("src/lhd/core/scan.hpp", "int x;\n");
  EXPECT_EQ(f.module, "core");
  EXPECT_TRUE(f.is_header);
  const auto g = lint::make_file_context("tools/lhd_lint/main.cpp", "int x;\n");
  EXPECT_EQ(g.module, "");
  EXPECT_FALSE(g.is_header);
}

}  // namespace
