// End-to-end integration tests: suite generation through GDS, training a
// real (small) CNN, contest metrics, full-chip scanning with a trained
// detector, and dataset/weight persistence across processes' boundaries
// (simulated via temp files).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/core/pipeline.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/data/io.hpp"
#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/util/log.hpp"

namespace lhd {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::Warn); }
};

TEST_F(IntegrationTest, SuiteThroughGdsFileOnDisk) {
  // Build a small suite, write the clips to a real GDS file, read the file
  // back, and verify the geometry survives byte-identically.
  namespace fs = std::filesystem;
  synth::SuiteSpec spec = synth::suite_by_name("B1");
  spec.n_train = 10;
  spec.n_test = 0;
  const auto built = synth::build_suite(spec, {});

  gds::Library lib;
  for (std::size_t i = 0; i < built.train.size(); ++i) {
    auto& s = lib.add_structure("CLIP_" + std::to_string(i));
    for (const auto& r : built.train[i].rects) {
      gds::Boundary b;
      b.layer = 1;
      b.polygon = geom::Polygon::from_rect(r);
      s.add(std::move(b));
    }
  }
  const auto path = (fs::temp_directory_path() / "lhd_it_suite.gds").string();
  gds::write_file(lib, path);
  const auto parsed = gds::read_file(path);
  for (std::size_t i = 0; i < built.train.size(); ++i) {
    auto rects = parsed.flatten_layer("CLIP_" + std::to_string(i), 1);
    EXPECT_EQ(geom::union_area(rects),
              geom::union_area(built.train[i].rects))
        << "clip " << i;
  }
  fs::remove(path);
}

TEST_F(IntegrationTest, SmallCnnBeatsChanceOnHeldOut) {
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = 200;
  spec.n_test = 100;
  const auto suite = synth::build_suite(spec, {});

  core::CnnDetectorConfig cfg;
  cfg.train.epochs = 12;
  cfg.augment_factor = 4;
  core::CnnDetector det("cnn-small", cfg);
  const auto result =
      core::run_experiment(det, suite, "B2-small",
                           litho::HotspotOracle::seconds_per_clip({}));
  // A half-size training run will not match the benchmark numbers, but it
  // must clearly beat chance on both axes.
  EXPECT_GT(result.confusion.accuracy(), 0.4);
  EXPECT_LT(result.confusion.false_alarm_rate(), 0.5);
  EXPECT_GT(result.speedup, 0.5);
}

TEST_F(IntegrationTest, ShallowPipelineEndToEnd) {
  synth::SuiteSpec spec = synth::suite_by_name("B1");
  spec.n_train = 120;
  spec.n_test = 80;
  const auto suite = synth::build_suite(spec, {});
  auto det = core::make_detector("adaboost");
  const auto result = core::run_experiment(*det, suite, "B1-small", 0.007);
  EXPECT_EQ(result.confusion.total(), 80u);
  EXPECT_GT(result.confusion.accuracy() +
                (1.0 - result.confusion.false_alarm_rate()),
            1.0)
      << "must beat the random-guess diagonal";
}

TEST_F(IntegrationTest, TrainedDetectorScansChipAndFindsPlantedSites) {
  // Build a chip whose tiles are mostly safe; scan with a detector trained
  // on the same style. The detector must flag some windows near the risky
  // tiles and not flood the whole chip.
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = 150;
  spec.n_test = 0;
  const auto suite = synth::build_suite(spec, {});
  auto det = core::make_detector("logreg");
  det->train(suite.train);

  synth::StyleConfig chip_style = spec.style;
  chip_style.p_risky_site = 0.5;
  const auto lib = synth::build_chip(chip_style, 4, 4, 31);
  const auto index =
      core::ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  core::ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  const auto result = core::scan_chip(index, *det, cfg);
  EXPECT_GT(result.windows_classified, 0u);
  EXPECT_GT(result.flagged, 0u);
  EXPECT_LT(result.flagged, result.windows_classified);
}

TEST_F(IntegrationTest, DatasetCacheAcrossBuilderCalls) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "lhd_it_cache";
  fs::remove_all(dir);
  synth::SuiteSpec spec = synth::suite_by_name("B4");
  spec.n_train = 20;
  spec.n_test = 10;
  synth::BuildOptions opts;
  opts.cache_dir = dir.string();

  const auto first = synth::build_suite(spec, opts);
  // Corrupt-resistant: loading uses the files, so a second build with a
  // *different* spec size still returns the cached data (cache key is the
  // suite name — documented behaviour).
  const auto second = synth::build_suite(spec, opts);
  ASSERT_EQ(first.train.size(), second.train.size());
  for (std::size_t i = 0; i < first.train.size(); ++i) {
    EXPECT_EQ(first.train[i].rects, second.train[i].rects);
  }
  fs::remove_all(dir);
}

TEST_F(IntegrationTest, ThresholdSweepTracesTradeoffCurve) {
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = 120;
  spec.n_test = 120;
  const auto suite = synth::build_suite(spec, {});
  auto det = core::make_detector("svm");
  det->train(suite.train);
  // Anchor the sweep to the observed score range so it always crosses the
  // decision surface regardless of the learner's score scale.
  float lo = 1e30f, hi = -1e30f;
  for (std::size_t i = 0; i < suite.test.size(); ++i) {
    const float sc = det->score(suite.test[i]);
    lo = std::min(lo, sc);
    hi = std::max(hi, sc);
  }
  std::vector<float> thresholds;
  for (int i = 0; i <= 16; ++i) {
    thresholds.push_back(lo - 0.01f +
                         (hi - lo + 0.02f) * static_cast<float>(i) / 16.0f);
  }
  const auto sweep = core::threshold_sweep(*det, suite.test, thresholds);
  // Accuracy must be non-increasing as the threshold rises, and the curve
  // must actually move (not be constant).
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].confusion.tp, sweep[i - 1].confusion.tp);
  }
  EXPECT_GT(sweep.front().confusion.alarms(), sweep.back().confusion.alarms());
}

}  // namespace
}  // namespace lhd
