// Tests for lhd/ml: every shallow classifier on controlled synthetic data.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "lhd/ml/adaboost.hpp"
#include "lhd/ml/decision_tree.hpp"
#include "lhd/ml/kernel_svm.hpp"
#include "lhd/ml/knn.hpp"
#include "lhd/ml/linear_svm.hpp"
#include "lhd/ml/logistic_regression.hpp"
#include "lhd/ml/naive_bayes.hpp"
#include "lhd/ml/pattern_match.hpp"
#include "lhd/ml/random_forest.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::ml {
namespace {

struct Problem {
  Matrix x;
  std::vector<float> y;
};

/// Two well-separated Gaussian blobs (linearly separable).
Problem blobs(int n_per_class, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  for (int i = 0; i < n_per_class; ++i) {
    p.x.push_back({static_cast<float>(rng.next_gaussian(2.0, 0.5)),
                   static_cast<float>(rng.next_gaussian(2.0, 0.5))});
    p.y.push_back(1.0f);
    p.x.push_back({static_cast<float>(rng.next_gaussian(-2.0, 0.5)),
                   static_cast<float>(rng.next_gaussian(-2.0, 0.5))});
    p.y.push_back(-1.0f);
  }
  return p;
}

/// XOR-style checkerboard — not linearly separable.
Problem xor_data(int n_per_quadrant, std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  for (int i = 0; i < n_per_quadrant; ++i) {
    for (const auto& [sx, sy] :
         {std::pair{1, 1}, {-1, -1}, {1, -1}, {-1, 1}}) {
      const float x = static_cast<float>(sx * (1.0 + rng.next_double()));
      const float y = static_cast<float>(sy * (1.0 + rng.next_double()));
      p.x.push_back({x, y});
      p.y.push_back(sx * sy > 0 ? 1.0f : -1.0f);
    }
  }
  return p;
}

double accuracy(const BinaryClassifier& clf, const Problem& p) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    correct += clf.predict(p.x[i]) == (p.y[i] > 0);
  }
  return static_cast<double>(correct) / static_cast<double>(p.x.size());
}

// Parameterized over every classifier: all must nail linearly separable
// blobs (train on one sample, test on a fresh one).
using ClassifierFactory = std::function<std::unique_ptr<BinaryClassifier>()>;

class AllClassifiers : public ::testing::TestWithParam<
                           std::pair<const char*, ClassifierFactory>> {};

TEST_P(AllClassifiers, SeparatesGaussianBlobs) {
  const auto clf = GetParam().second();
  const Problem train = blobs(60, 1);
  const Problem test = blobs(60, 2);
  clf->fit(train.x, train.y);
  EXPECT_GE(accuracy(*clf, test), 0.9) << GetParam().first;
}

TEST_P(AllClassifiers, RejectsEmptyTrainingSet) {
  const auto clf = GetParam().second();
  EXPECT_THROW(clf->fit({}, {}), Error);
}

TEST_P(AllClassifiers, RejectsBadLabels) {
  const auto clf = GetParam().second();
  EXPECT_THROW(clf->fit({{1.0f}}, {0.5f}), Error);
}

TEST_P(AllClassifiers, RejectsSizeMismatch) {
  const auto clf = GetParam().second();
  EXPECT_THROW(clf->fit({{1.0f}, {2.0f}}, {1.0f}), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllClassifiers,
    ::testing::Values(
        std::pair<const char*, ClassifierFactory>{
            "linear-svm", [] { return std::make_unique<LinearSvm>(); }},
        std::pair<const char*, ClassifierFactory>{
            "rbf-svm", [] { return std::make_unique<KernelSvm>(); }},
        std::pair<const char*, ClassifierFactory>{
            "adaboost", [] { return std::make_unique<AdaBoost>(); }},
        std::pair<const char*, ClassifierFactory>{
            "dtree", [] { return std::make_unique<DecisionTree>(); }},
        std::pair<const char*, ClassifierFactory>{
            "forest", [] { return std::make_unique<RandomForest>(); }},
        std::pair<const char*, ClassifierFactory>{
            "logreg", [] { return std::make_unique<LogisticRegression>(); }},
        std::pair<const char*, ClassifierFactory>{
            "naive-bayes",
            [] { return std::make_unique<GaussianNaiveBayes>(); }}),
    [](const auto& param_info) {
      std::string name = param_info.param.first;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// Nonlinear learners must solve XOR; the linear ones cannot.
TEST(NonlinearClassifiers, RbfSvmSolvesXor) {
  KernelSvm clf;
  const Problem train = xor_data(40, 3);
  clf.fit(train.x, train.y);
  EXPECT_GE(accuracy(clf, xor_data(40, 4)), 0.9);
}

TEST(NonlinearClassifiers, TreeSolvesXor) {
  DecisionTree clf;
  const Problem train = xor_data(40, 3);
  clf.fit(train.x, train.y);
  EXPECT_GE(accuracy(clf, xor_data(40, 4)), 0.9);
}

TEST(NonlinearClassifiers, ForestSolvesXor) {
  RandomForest clf;
  const Problem train = xor_data(40, 3);
  clf.fit(train.x, train.y);
  EXPECT_GE(accuracy(clf, xor_data(40, 4)), 0.9);
}

TEST(LinearClassifiers, LinearSvmFailsXor) {
  LinearSvm clf;
  const Problem train = xor_data(40, 3);
  clf.fit(train.x, train.y);
  EXPECT_LE(accuracy(clf, xor_data(40, 4)), 0.7);
}

// ------------------------------------------------------------- threshold --

TEST(Threshold, RaisingThresholdReducesAlarms) {
  LogisticRegression clf;
  const Problem train = blobs(50, 5);
  clf.fit(train.x, train.y);
  const Problem test = blobs(50, 6);
  auto alarms_at = [&](float threshold) {
    clf.set_threshold(threshold);
    int alarms = 0;
    for (const auto& row : test.x) alarms += clf.predict(row);
    return alarms;
  };
  EXPECT_GE(alarms_at(-5.0f), alarms_at(0.0f));
  EXPECT_GE(alarms_at(0.0f), alarms_at(5.0f));
}

TEST(Threshold, DefaultIsZero) {
  LinearSvm clf;
  EXPECT_FLOAT_EQ(clf.threshold(), 0.0f);
}

// ------------------------------------------------------------ per-model ---

TEST(LinearSvm, ExposesWeights) {
  LinearSvm clf;
  const Problem train = blobs(50, 7);
  clf.fit(train.x, train.y);
  EXPECT_EQ(clf.weights().size(), 2u);
  // Both features point towards the positive blob.
  EXPECT_GT(clf.weights()[0], 0.0f);
  EXPECT_GT(clf.weights()[1], 0.0f);
}

TEST(KernelSvm, KeepsSubsetAsSupportVectors) {
  KernelSvm clf;
  const Problem train = blobs(60, 8);
  clf.fit(train.x, train.y);
  EXPECT_GT(clf.support_vector_count(), 0u);
  EXPECT_LT(clf.support_vector_count(), train.x.size());
}

TEST(AdaBoost, BuildsRequestedRounds) {
  AdaBoostConfig cfg;
  cfg.rounds = 10;
  AdaBoost clf(cfg);
  const Problem train = xor_data(30, 9);
  clf.fit(train.x, train.y);
  EXPECT_LE(clf.stumps().size(), 10u);
  EXPECT_GE(clf.stumps().size(), 2u);
  for (const auto& s : clf.stumps()) EXPECT_GT(s.weight, 0.0f);
}

TEST(DecisionTree, RespectsMaxDepth) {
  DecisionTreeConfig cfg;
  cfg.max_depth = 2;
  DecisionTree clf(cfg);
  const Problem train = xor_data(30, 10);
  clf.fit(train.x, train.y);
  EXPECT_LE(clf.depth(), 2);
}

TEST(DecisionTree, PureDataGivesLeafOnly) {
  DecisionTree clf;
  Matrix x = {{1.0f}, {2.0f}, {3.0f}};
  std::vector<float> y = {1.0f, 1.0f, 1.0f};
  clf.fit(x, y);
  EXPECT_EQ(clf.node_count(), 1);
  EXPECT_GT(clf.score({9.0f}), 0.0f);
}

TEST(DecisionTree, WeightedFitRespectsWeights) {
  DecisionTree clf;
  // Same point labeled both ways; weights decide the leaf.
  Matrix x = {{0.0f}, {0.0f}};
  std::vector<float> y = {1.0f, -1.0f};
  clf.fit_weighted(x, y, {10.0, 1.0});
  EXPECT_GT(clf.score({0.0f}), 0.0f);
  clf.fit_weighted(x, y, {1.0, 10.0});
  EXPECT_LT(clf.score({0.0f}), 0.0f);
}

TEST(RandomForest, UsesConfiguredTreeCount) {
  RandomForestConfig cfg;
  cfg.trees = 7;
  RandomForest clf(cfg);
  const Problem train = blobs(30, 11);
  clf.fit(train.x, train.y);
  EXPECT_EQ(clf.tree_count(), 7u);
}

TEST(LogisticRegression, ProbabilityInUnitInterval) {
  LogisticRegression clf;
  const Problem train = blobs(40, 12);
  clf.fit(train.x, train.y);
  for (const auto& row : train.x) {
    const float p = clf.probability(row);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  EXPECT_GT(clf.probability({2.0f, 2.0f}), 0.9f);
  EXPECT_LT(clf.probability({-2.0f, -2.0f}), 0.1f);
}

TEST(NaiveBayes, RequiresBothClasses) {
  GaussianNaiveBayes clf;
  Matrix x = {{1.0f}, {2.0f}};
  std::vector<float> y = {1.0f, 1.0f};
  EXPECT_THROW(clf.fit(x, y), Error);
}

// --------------------------------------------------------- pattern match --

TEST(PatternMatch, ExactMatchOnSeenHotspot) {
  PatternMatcher clf;
  Matrix x = {{0.1f, 0.9f}, {0.9f, 0.1f}};
  std::vector<float> y = {1.0f, -1.0f};
  clf.fit(x, y);
  EXPECT_TRUE(clf.predict({0.1f, 0.9f}));   // stored hotspot
  EXPECT_FALSE(clf.predict({0.9f, 0.1f}));  // non-hotspot never stored
  EXPECT_EQ(clf.library_size(), 0u);        // exact mode keeps hashes only
}

TEST(PatternMatch, MissesUnseenPattern) {
  PatternMatcher clf;  // exact-only
  Matrix x = {{0.1f, 0.9f}};
  std::vector<float> y = {1.0f};
  clf.fit(x, y);
  EXPECT_FALSE(clf.predict({0.5f, 0.5f}));
}

TEST(PatternMatch, FuzzyMatchWithinRadius) {
  PatternMatchConfig cfg;
  cfg.match_radius = 0.2;
  PatternMatcher clf(cfg);
  Matrix x = {{0.5f, 0.5f}};
  std::vector<float> y = {1.0f};
  clf.fit(x, y);
  EXPECT_TRUE(clf.predict({0.55f, 0.5f}));   // inside the ball
  EXPECT_FALSE(clf.predict({0.9f, 0.9f}));   // outside
}

TEST(PatternMatch, AutoRadiusCalibrates) {
  PatternMatchConfig cfg;
  cfg.auto_radius = true;
  PatternMatcher clf(cfg);
  Rng rng(13);
  Matrix x;
  std::vector<float> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<float>(rng.next_double()),
                 static_cast<float>(rng.next_double())});
    y.push_back(i % 2 == 0 ? 1.0f : -1.0f);
  }
  clf.fit(x, y);
  EXPECT_EQ(clf.library_size(), 10u);
  // A stored hotspot matches itself through the fuzzy path as well.
  EXPECT_TRUE(clf.predict(x[0]));
}


// -------------------------------------------------------------------- knn --

TEST(Knn, SeparatesBlobs) {
  KNearest clf;
  const Problem train = blobs(50, 21);
  clf.fit(train.x, train.y);
  EXPECT_GE(accuracy(clf, blobs(50, 22)), 0.95);
  EXPECT_EQ(clf.stored(), train.x.size());
}

TEST(Knn, SolvesXor) {
  KNearest clf;
  const Problem train = xor_data(40, 23);
  clf.fit(train.x, train.y);
  EXPECT_GE(accuracy(clf, xor_data(40, 24)), 0.9);
}

TEST(Knn, OneNearestMemorizesTrainingSet) {
  KnnConfig cfg;
  cfg.k = 1;
  KNearest clf(cfg);
  const Problem train = blobs(20, 25);
  clf.fit(train.x, train.y);
  for (std::size_t i = 0; i < train.x.size(); ++i) {
    EXPECT_EQ(clf.predict(train.x[i]), train.y[i] > 0);
  }
}

TEST(Knn, KLargerThanDatasetIsClamped) {
  KnnConfig cfg;
  cfg.k = 100;
  KNearest clf(cfg);
  Matrix x = {{0.0f}, {1.0f}, {2.0f}};
  std::vector<float> y = {1.0f, 1.0f, -1.0f};
  clf.fit(x, y);
  EXPECT_TRUE(clf.predict({0.5f}));  // majority of all three is +
}

TEST(Knn, RejectsNonPositiveK) {
  KnnConfig cfg;
  cfg.k = 0;
  KNearest clf(cfg);
  EXPECT_THROW(clf.fit({{1.0f}}, {1.0f}), Error);
}

}  // namespace
}  // namespace lhd::ml
