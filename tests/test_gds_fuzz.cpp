// Regression corpus + structure-aware mutation sweeps for the GDSII
// reader. Every file in tests/fixtures/gds_corpus/ is one crash class
// (hex text, one comment header explaining it); the contract under test
// is always the same: gds::read_bytes either returns a Library or throws
// lhd::Error — never crashes, hangs, or trips a sanitizer.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "lhd/gds/model.hpp"
#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/testkit/testkit.hpp"

namespace lhd::testkit {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(LHD_FIXTURES_DIR) + "/gds_corpus/" + name;
}

std::vector<std::uint8_t> corpus(const std::string& name) {
  return load_hex_file(corpus_path(name));
}

// ------------------------------------------------- one test per crash class

TEST(GdsCorpus, TruncatedHeader) {
  EXPECT_THROW((void)gds::read_bytes(corpus("truncated_header.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, LengthFieldSmallerThanHeader) {
  EXPECT_THROW((void)gds::read_bytes(corpus("length_lt_4.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, OddRecordLength) {
  EXPECT_THROW((void)gds::read_bytes(corpus("odd_length.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, RecordOverrunsStream) {
  EXPECT_THROW((void)gds::read_bytes(corpus("record_overrun.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, EofMidLibraryIsAParseError) {
  // Historically this tripped a generic LHD_CHECK; it must be ParseError.
  try {
    (void)gds::read_bytes(corpus("eof_mid_library.hex"));
    FAIL() << "expected ParseError";
  } catch (const gds::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unexpected end"),
              std::string::npos);
  }
}

TEST(GdsCorpus, MisalignedXyPayload) {
  EXPECT_THROW((void)gds::read_bytes(corpus("xy_misaligned.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, CoordinateOverflowRejectedAtParse) {
  try {
    (void)gds::read_bytes(corpus("coord_overflow.hex"));
    FAIL() << "expected ParseError";
  } catch (const gds::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2^30"), std::string::npos);
  }
}

TEST(GdsCorpus, PathWidthOverflowRejectedAtParse) {
  EXPECT_THROW((void)gds::read_bytes(corpus("path_width_overflow.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, ArefZeroColrow) {
  EXPECT_THROW((void)gds::read_bytes(corpus("aref_zero_colrow.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, ArefExpansionBombRejectedAtParse) {
  try {
    (void)gds::read_bytes(corpus("aref_expansion_bomb.hex"));
    FAIL() << "expected ParseError";
  } catch (const gds::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2^20"), std::string::npos);
  }
}

TEST(GdsCorpus, SrefDepthBombParsesButFlattenThrows) {
  const auto lib = gds::read_bytes(corpus("sref_depth_bomb.hex"));
  EXPECT_EQ(lib.structures().size(), 71u);
  EXPECT_THROW((void)lib.flatten_layer("S0", 1), Error);
}

TEST(GdsCorpus, NonPositiveUnits) {
  EXPECT_THROW((void)gds::read_bytes(corpus("bad_units.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, StransBadPayloadSize) {
  EXPECT_THROW((void)gds::read_bytes(corpus("strans_bad_size.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, BoundaryOpenRing) {
  EXPECT_THROW((void)gds::read_bytes(corpus("boundary_open_ring.hex")),
               gds::ParseError);
}

TEST(GdsCorpus, DuplicateStructureName) {
  EXPECT_THROW((void)gds::read_bytes(corpus("duplicate_structure.hex")),
               Error);
}

TEST(GdsCorpus, ValidSeedParsesAndFlattens) {
  const auto lib = gds::read_bytes(corpus("seed_valid_library.hex"));
  EXPECT_EQ(lib.structures().size(), 2u);
  EXPECT_EQ(lib.flatten_layer("T", 1).size(), 1u);
}

// Every checked-in corpus file must be exercised above: adding a new crash
// class without a regression test is exactly the gap this meta-test closes.
TEST(GdsCorpus, EveryCorpusFileHasARegressionTest) {
  const std::set<std::string> covered = {
      "truncated_header.hex",    "length_lt_4.hex",
      "odd_length.hex",          "record_overrun.hex",
      "eof_mid_library.hex",     "xy_misaligned.hex",
      "coord_overflow.hex",      "path_width_overflow.hex",
      "aref_zero_colrow.hex",    "aref_expansion_bomb.hex",
      "sref_depth_bomb.hex",     "bad_units.hex",
      "strans_bad_size.hex",     "boundary_open_ring.hex",
      "duplicate_structure.hex", "seed_valid_library.hex",
  };
  std::set<std::string> on_disk;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(LHD_FIXTURES_DIR) + "/gds_corpus")) {
    on_disk.insert(entry.path().filename().string());
  }
  EXPECT_EQ(on_disk, covered);
}

// -------------------------------------------------------- mutation sweeps

TEST(GdsFuzz, MutatedStreamsNeverCrashTheReader) {
  const auto base = corpus("seed_valid_library.hex");
  CHECK_PROPERTY("gds-mutation-sweep", 128, [&](Rng& rng, std::size_t) {
    const auto mutated = mutate_gds(base, rng);
    try {
      const auto lib = gds::read_bytes(mutated);
      (void)gds::write_bytes(lib);  // what parses must re-serialize
      for (const auto& s : lib.structures()) {
        try {
          (void)lib.flatten_layer(s.name, 1);
        } catch (const Error&) {
          // Flatten-time rejection (depth, overflow, dangling ref) is fine.
        }
      }
    } catch (const Error&) {
      // Rejected input is the expected outcome for most mutations.
    }
  });
}

TEST(GdsFuzz, MutatedRandomLibrariesNeverCrashTheReader) {
  CHECK_PROPERTY("gds-random-mutation-sweep", 64,
                 [](Rng& rng, std::size_t size) {
    const auto base = gds::write_bytes(random_library(rng, size));
    const auto mutated = mutate_gds(base, rng);
    try {
      (void)gds::read_bytes(mutated);
    } catch (const Error&) {
    }
  });
}

TEST(GdsFuzz, UnstructuredNoiseNeverCrashesTheReader) {
  CHECK_PROPERTY("gds-noise-sweep", 64, [](Rng& rng, std::size_t size) {
    const auto noise = random_bytes(rng, size * 16);
    try {
      (void)gds::read_bytes(noise);
    } catch (const Error&) {
    }
  });
}

}  // namespace
}  // namespace lhd::testkit
