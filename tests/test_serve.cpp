// Tests for lhd/serve: wire-format round trips and decoder hardening
// (truncation at every offset, seed-corpus regressions, frame-sync
// recovery), and the Server itself — caching, admission control under a
// full queue, weight reloads racing in-flight traffic, and concurrent
// clients over real socketpair transports.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/data/clip_hash.hpp"
#include "lhd/nn/serialize.hpp"
#include "lhd/obs/json.hpp"
#include "lhd/serve/client.hpp"
#include "lhd/serve/protocol.hpp"
#include "lhd/serve/server.hpp"
#include "lhd/serve/transport.hpp"
#include "lhd/testkit/testkit.hpp"

namespace lhd::serve {
namespace {

using geom::Rect;
using testkit::FaultyIStream;
using testkit::for_each_fail_point;
using testkit::load_hex_file;
using testkit::random_bytes;
using testkit::random_rects;

// ------------------------------------------------------------- helpers ----

std::vector<std::uint8_t> encode_request_bytes(const Request& req) {
  std::ostringstream os;
  encode_request(req, os);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> encode_response_bytes(const Response& resp) {
  std::ostringstream os;
  encode_response(resp, os);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

std::istringstream byte_stream(const std::vector<std::uint8_t>& bytes) {
  return std::istringstream(std::string(bytes.begin(), bytes.end()));
}

/// Decode one request from `bytes`, expecting a WireError; ADD_FAILURE
/// and a placeholder error otherwise so the caller's asserts still run.
WireError expect_wire_error(const std::vector<std::uint8_t>& bytes) {
  auto in = byte_stream(bytes);
  try {
    const auto req = decode_request(in);
    ADD_FAILURE() << "expected WireError, got "
                  << (req ? "a decoded request" : "clean EOF");
  } catch (const WireError& e) {
    return e;
  }
  return WireError(0, "placeholder: decode did not throw", false);
}

std::vector<std::uint8_t> corpus_bytes(const std::string& name) {
  return load_hex_file(std::string(LHD_FIXTURES_DIR) + "/serve_corpus/" +
                       name);
}

std::string random_model_name(Rng& rng, std::size_t max_len = 8) {
  std::string name;
  const auto len = rng.next_below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    name.push_back(static_cast<char>('a' + rng.next_below(26)));
  }
  return name;
}

Request random_request(Rng& rng, std::size_t size) {
  Request req;
  req.tenant = static_cast<std::uint32_t>(rng.next_u64());
  switch (rng.next_below(4)) {
    case 0: {
      ScoreClip body;
      body.model = random_model_name(rng);
      body.window_nm = static_cast<std::int32_t>(rng.next_int(64, 4096));
      body.rects = random_rects(rng, rng.next_below(size + 1), 2048);
      req.body = std::move(body);
      break;
    }
    case 1: {
      ScanRegion body;
      body.model = random_model_name(rng);
      body.window_nm = static_cast<std::int32_t>(rng.next_int(64, 4096));
      body.stride_nm = static_cast<std::int32_t>(rng.next_int(32, 2048));
      body.rects = random_rects(rng, rng.next_below(size + 1), 4096);
      req.body = std::move(body);
      break;
    }
    case 2: {
      ReloadWeights body;
      body.model = random_model_name(rng);
      body.weights = random_bytes(rng, rng.next_below(4 * size + 1));
      req.body = std::move(body);
      break;
    }
    default:
      req.body = Stats{};
      break;
  }
  return req;
}

Response random_response(Rng& rng, std::size_t size) {
  Response resp;
  const auto op = static_cast<Op>(rng.next_below(kOpCount));
  switch (rng.next_below(3)) {
    case 0:  // Ok body for a random op
      switch (op) {
        case Op::ScoreClip:
          resp.body = ScoreResult{static_cast<float>(rng.next_double(-8, 8))};
          break;
        case Op::ScanRegion: {
          ScanResultWire body;
          body.windows_total = rng.next_u64() % 1000;
          body.cache_hits = rng.next_u64() % 1000;
          body.cache_misses = rng.next_u64() % 1000;
          const auto n = rng.next_below(size + 1);
          for (std::size_t i = 0; i < n; ++i) {
            ScanHitWire hit;
            hit.window = testkit::random_rect(rng, 1 << 20);
            hit.score = static_cast<float>(rng.next_double(-8, 8));
            body.hits.push_back(hit);
          }
          resp.body = std::move(body);
          break;
        }
        case Op::ReloadWeights:
          resp.body = ReloadResult{rng.next_u64() % 1000};
          break;
        case Op::Stats: {
          StatsResult body;
          body.json = "{\"n\":" + std::to_string(rng.next_below(100)) + "}";
          resp.body = std::move(body);
          break;
        }
      }
      break;
    case 1:
      resp.body = BusyResult{op};
      break;
    default:
      resp.body = ErrorResult{op, random_model_name(rng, 3 * size + 1)};
      break;
  }
  return resp;
}

/// Deterministic, thread-safe detector whose score depends only on the
/// clip's total rect area (translation- and order-invariant — the dedup /
/// canonicalization precondition), shifted by a per-instance offset so
/// tests can tell weight "versions" apart.
class StubDetector final : public core::Detector {
 public:
  explicit StubDetector(float offset = 0.0f) : offset_(offset) {}

  std::string name() const override { return "stub"; }
  void train(const data::Dataset&) override {}
  float score(const data::Clip& clip) const override {
    double sum = 0.0;
    for (const auto& r : clip.rects) sum += static_cast<double>(r.area());
    return offset_ + static_cast<float>(sum / (1024.0 * 1024.0));
  }
  bool predict(const data::Clip& clip) const override {
    return score(clip) > threshold_;
  }
  void set_threshold(float threshold) override { threshold_ = threshold; }
  float threshold() const override { return threshold_; }

 private:
  float offset_ = 0.0f;
  float threshold_ = 0.0f;
};

/// Detector whose score() blocks until released — lets tests hold a
/// request in flight deterministically. (Raw std primitives are fine in
/// tests; the lint rule gates src/ only.)
class GateDetector final : public core::Detector {
 public:
  std::string name() const override { return "gate"; }
  void train(const data::Dataset&) override {}
  float score(const data::Clip& clip) const override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    return inner_.score(clip);
  }
  bool predict(const data::Clip& clip) const override {
    return score(clip) > 0.0f;
  }
  void set_threshold(float) override {}
  float threshold() const override { return 0.0f; }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  /// Block until at least `n` score() calls are waiting at the gate.
  void wait_for_waiters(int n) const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return waiting_ >= n; });
  }

 private:
  StubDetector inner_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable int waiting_ = 0;
  bool open_ = false;
};

Request score_request(std::vector<Rect> rects, std::uint32_t tenant = 0,
                      std::int32_t window_nm = 1024) {
  Request req;
  req.tenant = tenant;
  ScoreClip body;
  body.window_nm = window_nm;
  body.rects = std::move(rects);
  req.body = std::move(body);
  return req;
}

// ------------------------------------------------- protocol round trips ---

TEST(ServeProtocol, RequestRoundTripsEveryOp) {
  std::vector<Request> requests;
  requests.push_back(score_request({{0, 0, 100, 200}}, 7));
  {
    Request req;
    req.tenant = 42;
    ScanRegion body;
    body.model = "cnn";
    body.window_nm = 2048;
    body.stride_nm = 512;
    body.rects = {{-100, -50, 300, 400}, {1000, 1000, 1200, 1300}};
    req.body = std::move(body);
    requests.push_back(std::move(req));
  }
  {
    Request req;
    ReloadWeights body;
    body.model = "m";
    body.weights = {0xDE, 0xAD, 0xBE, 0xEF};
    req.body = std::move(body);
    requests.push_back(std::move(req));
  }
  {
    Request req;
    req.tenant = 0xFFFFFFFFu;
    req.body = Stats{};
    requests.push_back(std::move(req));
  }

  for (const auto& req : requests) {
    auto in = byte_stream(encode_request_bytes(req));
    const auto decoded = decode_request(in);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, req) << "op " << static_cast<int>(request_op(req));
    // Exactly one frame consumed: the stream is now at clean EOF.
    EXPECT_FALSE(decode_request(in).has_value());
  }
}

TEST(ServeProtocol, ResponseRoundTripsEveryStatusAndOp) {
  std::vector<Response> responses;
  responses.push_back({ScoreResult{1.25f}});
  {
    ScanResultWire body;
    body.windows_total = 9;
    body.cache_hits = 4;
    body.cache_misses = 5;
    body.hits = {{{0, 0, 1024, 1024}, 2.5f}, {{512, 0, 1536, 1024}, -1.0f}};
    responses.push_back({std::move(body)});
  }
  responses.push_back({ReloadResult{3}});
  responses.push_back({StatsResult{"{\"a\":1}"}});
  for (std::uint8_t op = 0; op < kOpCount; ++op) {
    responses.push_back({BusyResult{static_cast<Op>(op)}});
    responses.push_back({ErrorResult{static_cast<Op>(op), "why not"}});
  }

  for (const auto& resp : responses) {
    auto in = byte_stream(encode_response_bytes(resp));
    EXPECT_EQ(decode_response(in), resp);
  }
}

TEST(ServeProtocol, ResponseStatusAndOpAccessors) {
  EXPECT_EQ(response_status(Response{ScoreResult{}}), Status::Ok);
  EXPECT_EQ(response_op(Response{ScoreResult{}}), Op::ScoreClip);
  EXPECT_EQ(response_status(Response{StatsResult{}}), Status::Ok);
  EXPECT_EQ(response_op(Response{StatsResult{}}), Op::Stats);
  const Response busy{BusyResult{Op::ScanRegion}};
  EXPECT_EQ(response_status(busy), Status::Busy);
  EXPECT_EQ(response_op(busy), Op::ScanRegion);
  const Response err{ErrorResult{Op::ReloadWeights, "no"}};
  EXPECT_EQ(response_status(err), Status::Error);
  EXPECT_EQ(response_op(err), Op::ReloadWeights);
}

TEST(ServeProtocol, RequestRoundTripProperty) {
  CHECK_PROPERTY("serve-request-round-trip", 64,
                 [](Rng& rng, std::size_t size) {
                   const Request req = random_request(rng, size);
                   auto in = byte_stream(encode_request_bytes(req));
                   const auto decoded = decode_request(in);
                   LHD_CHECK(decoded.has_value(),
                             "round trip lost the request");
                   LHD_CHECK(*decoded == req, "request round trip mismatch");
                 });
}

TEST(ServeProtocol, ResponseRoundTripProperty) {
  CHECK_PROPERTY("serve-response-round-trip", 64,
                 [](Rng& rng, std::size_t size) {
                   const Response resp = random_response(rng, size);
                   auto in = byte_stream(encode_response_bytes(resp));
                   LHD_CHECK(decode_response(in) == resp,
                             "response round trip mismatch");
                 });
}

// ------------------------------------------------- truncation hardening ---

TEST(ServeProtocol, RequestTruncatedAtEveryOffset) {
  Request req = score_request({{0, 0, 100, 200}, {300, 300, 512, 700}}, 7);
  std::get<ScoreClip>(req.body).model = "model-x";
  const auto bytes = encode_request_bytes(req);
  ASSERT_GT(bytes.size(), 20u);

  for_each_fail_point(bytes, [](std::istream& in, std::size_t fail_at) {
    if (fail_at == 0) {
      // Nothing readable at all is a clean goodbye, not an error.
      EXPECT_FALSE(decode_request(in).has_value()) << "fail_at=0";
      return;
    }
    try {
      (void)decode_request(in);
      ADD_FAILURE() << "no error at fail_at=" << fail_at;
    } catch (const WireError& e) {
      // Truncation never leaves the stream frame-synchronized.
      EXPECT_FALSE(e.recoverable()) << "fail_at=" << fail_at;
      EXPECT_LE(e.offset(), fail_at) << "fail_at=" << fail_at;
    }
  });
}

TEST(ServeProtocol, ResponseTruncatedAtEveryOffset) {
  ScanResultWire body;
  body.windows_total = 4;
  body.cache_misses = 4;
  body.hits = {{{0, 0, 1024, 1024}, 1.5f}};
  const auto bytes = encode_response_bytes(Response{std::move(body)});

  for_each_fail_point(bytes, [](std::istream& in, std::size_t fail_at) {
    EXPECT_THROW((void)decode_response(in), WireError)
        << "fail_at=" << fail_at;
  });
}

TEST(ServeProtocol, FaultyStreamNeverReadsPastFailPoint) {
  const auto bytes = encode_request_bytes(score_request({{0, 0, 64, 64}}));
  for (std::size_t fail_at = 1; fail_at < bytes.size(); ++fail_at) {
    FaultyIStream in(bytes, fail_at);
    EXPECT_THROW((void)decode_request(in), WireError);
    EXPECT_LE(in.bytes_served(), fail_at);
  }
}

// --------------------------------------------------------- seed corpus ----

// Every corpus file gets a regression test pinning the decoder's verdict
// (decoded value, or WireError recoverability + op attribution). The
// meta-test at the end keeps this list and the directory in sync.
constexpr const char* kCorpusFiles[] = {
    "bad_magic.hex",         "bad_op.hex",
    "bad_version.hex",       "name_overflow.hex",
    "oversize_payload.hex",  "rect_count_lie.hex",
    "trailing_garbage.hex",  "truncated_payload.hex",
    "valid_reload.hex",      "valid_scan_region.hex",
    "valid_score_clip.hex",  "valid_stats.hex",
    "weight_cap_lie.hex",
};

TEST(ServeCorpus, ValidScoreClip) {
  auto in = byte_stream(corpus_bytes("valid_score_clip.hex"));
  const auto req = decode_request(in);
  ASSERT_TRUE(req.has_value());
  Request expected = score_request({{0, 0, 100, 200}}, 7);
  std::get<ScoreClip>(expected.body).model = "m";
  EXPECT_EQ(*req, expected);
}

TEST(ServeCorpus, ValidScanRegion) {
  auto in = byte_stream(corpus_bytes("valid_scan_region.hex"));
  const auto req = decode_request(in);
  ASSERT_TRUE(req.has_value());
  ASSERT_EQ(request_op(*req), Op::ScanRegion);
  const auto& body = std::get<ScanRegion>(req->body);
  EXPECT_EQ(body.model, "m");
  EXPECT_EQ(body.window_nm, 1024);
  EXPECT_EQ(body.stride_nm, 512);
  EXPECT_EQ(body.rects.size(), 2u);
}

TEST(ServeCorpus, ValidReload) {
  auto in = byte_stream(corpus_bytes("valid_reload.hex"));
  const auto req = decode_request(in);
  ASSERT_TRUE(req.has_value());
  ASSERT_EQ(request_op(*req), Op::ReloadWeights);
  const auto& body = std::get<ReloadWeights>(req->body);
  EXPECT_EQ(body.model, "m");
  EXPECT_EQ(body.weights, (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(ServeCorpus, ValidStats) {
  auto in = byte_stream(corpus_bytes("valid_stats.hex"));
  const auto req = decode_request(in);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(request_op(*req), Op::Stats);
}

TEST(ServeCorpus, BadMagicUnrecoverableAtOffsetZero) {
  const auto e = expect_wire_error(corpus_bytes("bad_magic.hex"));
  EXPECT_FALSE(e.recoverable());
  EXPECT_EQ(e.offset(), 0u);
  EXPECT_FALSE(e.op().has_value());
}

TEST(ServeCorpus, BadVersionUnrecoverable) {
  const auto e = expect_wire_error(corpus_bytes("bad_version.hex"));
  EXPECT_FALSE(e.recoverable());
  EXPECT_EQ(e.offset(), 4u);
  EXPECT_FALSE(e.op().has_value());
}

TEST(ServeCorpus, BadOpUnrecoverable) {
  const auto e = expect_wire_error(corpus_bytes("bad_op.hex"));
  EXPECT_FALSE(e.recoverable());
  EXPECT_EQ(e.offset(), 12u);
  EXPECT_FALSE(e.op().has_value());
}

TEST(ServeCorpus, OversizePayloadRejectedBeforeAllocation) {
  const auto e = expect_wire_error(corpus_bytes("oversize_payload.hex"));
  EXPECT_FALSE(e.recoverable());
  EXPECT_NE(std::string(e.what()).find("payload"), std::string::npos);
}

TEST(ServeCorpus, TruncatedPayloadUnrecoverable) {
  const auto e = expect_wire_error(corpus_bytes("truncated_payload.hex"));
  EXPECT_FALSE(e.recoverable());
}

TEST(ServeCorpus, NameOverflowRecoverableWithOp) {
  const auto e = expect_wire_error(corpus_bytes("name_overflow.hex"));
  EXPECT_TRUE(e.recoverable());
  ASSERT_TRUE(e.op().has_value());
  EXPECT_EQ(*e.op(), Op::ScoreClip);
}

TEST(ServeCorpus, RectCountLieRecoverable) {
  const auto e = expect_wire_error(corpus_bytes("rect_count_lie.hex"));
  EXPECT_TRUE(e.recoverable());
  ASSERT_TRUE(e.op().has_value());
  EXPECT_EQ(*e.op(), Op::ScoreClip);
}

TEST(ServeCorpus, TrailingGarbageRecoverable) {
  const auto e = expect_wire_error(corpus_bytes("trailing_garbage.hex"));
  EXPECT_TRUE(e.recoverable());
  ASSERT_TRUE(e.op().has_value());
  EXPECT_EQ(*e.op(), Op::Stats);
}

TEST(ServeCorpus, WeightCapLieRecoverable) {
  const auto e = expect_wire_error(corpus_bytes("weight_cap_lie.hex"));
  EXPECT_TRUE(e.recoverable());
  ASSERT_TRUE(e.op().has_value());
  EXPECT_EQ(*e.op(), Op::ReloadWeights);
}

TEST(ServeCorpus, RecoverableErrorLeavesStreamFrameSynchronized) {
  // A bad payload inside an intact frame must consume exactly that frame:
  // the next frame on the same stream still decodes.
  auto bytes = corpus_bytes("name_overflow.hex");
  const auto next = corpus_bytes("valid_stats.hex");
  bytes.insert(bytes.end(), next.begin(), next.end());
  auto in = byte_stream(bytes);
  EXPECT_THROW((void)decode_request(in), WireError);
  const auto req = decode_request(in);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(request_op(*req), Op::Stats);
}

TEST(ServeCorpus, EveryCorpusFileHasARegressionTest) {
  std::set<std::string> on_disk;
  const std::string dir = std::string(LHD_FIXTURES_DIR) + "/serve_corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    on_disk.insert(entry.path().filename().string());
  }
  const std::set<std::string> listed(std::begin(kCorpusFiles),
                                     std::end(kCorpusFiles));
  EXPECT_EQ(on_disk, listed)
      << "tests/fixtures/serve_corpus and kCorpusFiles disagree — every "
         "corpus file needs a regression test here";
}

// -------------------------------------------------------------- server ----

TEST(ServeServer, ScoreCachesCanonicalFormAcrossTenants) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());

  const auto first = server.handle(score_request({{10, 10, 110, 210}}, 1));
  ASSERT_TRUE(std::holds_alternative<ScoreResult>(first.body));
  // Same pattern, translated: canonicalization must hit the cache.
  const auto second = server.handle(score_request({{500, 300, 600, 500}}, 2));
  ASSERT_TRUE(std::holds_alternative<ScoreResult>(second.body));
  EXPECT_EQ(std::get<ScoreResult>(first.body).score,
            std::get<ScoreResult>(second.body).score);
  EXPECT_EQ(server.registry().counter("serve.tenant.1.cache_misses").value(),
            1u);
  EXPECT_EQ(server.registry().counter("serve.tenant.2.cache_hits").value(),
            1u);
  EXPECT_EQ(server.registry().counter("serve.responses_ok").value(), 2u);
}

TEST(ServeServer, UnknownModelIsATypedError) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  Request req = score_request({{0, 0, 10, 10}});
  std::get<ScoreClip>(req.body).model = "no-such-model";
  const auto resp = server.handle(req);
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(resp.body));
  EXPECT_EQ(std::get<ErrorResult>(resp.body).op, Op::ScoreClip);
}

TEST(ServeServer, ScoreRejectsRectsOutsideWindow) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  const auto resp = server.handle(score_request({{-5, 0, 10, 10}}));
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(resp.body));
  const auto over = server.handle(score_request({{0, 0, 2048, 10}}, 0, 1024));
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(over.body));
}

TEST(ServeServer, ScanMatchesDirectDedupScan) {
  const auto detector = std::make_shared<StubDetector>();
  std::vector<Rect> rects;
  for (int cx = 0; cx < 4; ++cx) {
    for (int cy = 0; cy < 3; ++cy) {
      rects.push_back({cx * 1024 + 100, cy * 1024 + 100, cx * 1024 + 400,
                       cy * 1024 + 900});
      rects.push_back({cx * 1024 + 600, cy * 1024 + 200, cx * 1024 + 900,
                       cy * 1024 + 800});
    }
  }

  Server server;
  server.add_model("default", detector);
  Request req;
  ScanRegion body;
  body.window_nm = 1024;
  body.stride_nm = 512;
  body.rects = rects;
  req.body = std::move(body);
  const auto resp = server.handle(req);
  ASSERT_TRUE(std::holds_alternative<ScanResultWire>(resp.body))
      << "scan failed: "
      << (std::holds_alternative<ErrorResult>(resp.body)
              ? std::get<ErrorResult>(resp.body).message
              : "");
  const auto& wire = std::get<ScanResultWire>(resp.body);

  core::ChipIndex chip(rects);
  core::ScanConfig config;
  config.window_nm = 1024;
  config.stride_nm = 512;
  config.threads = 1;
  config.dedup = true;
  const auto direct = core::scan_chip(chip, *detector, config);

  EXPECT_EQ(wire.windows_total, direct.windows_total);
  EXPECT_EQ(wire.cache_hits, direct.cache_hits);
  EXPECT_EQ(wire.cache_misses, direct.cache_misses);
  ASSERT_EQ(wire.hits.size(), direct.hits.size());
  for (std::size_t i = 0; i < wire.hits.size(); ++i) {
    EXPECT_EQ(wire.hits[i].window, direct.hits[i].window);
    EXPECT_EQ(wire.hits[i].score, direct.hits[i].score);
  }
}

TEST(ServeServer, ScanCapsRejectHostileRegions) {
  ServerConfig config;
  config.max_scan_windows = 16;
  Server server(config);
  server.add_model("default", std::make_shared<StubDetector>());

  const auto error_of = [&](ScanRegion body) {
    Request req;
    req.body = std::move(body);
    const auto resp = server.handle(req);
    EXPECT_TRUE(std::holds_alternative<ErrorResult>(resp.body));
    return std::holds_alternative<ErrorResult>(resp.body)
               ? std::get<ErrorResult>(resp.body).message
               : std::string();
  };

  // Two far-apart rects: the extent cap must fire before any spatial
  // index allocates a bucket grid over the whole span.
  ScanRegion extent_bomb;
  extent_bomb.rects = {{0, 0, 10, 10}, {2'000'000, 0, 2'000'010, 10}};
  EXPECT_NE(error_of(std::move(extent_bomb)).find("extent"),
            std::string::npos);

  // Coordinates beyond ±2^30 would overflow 32-bit extent math.
  ScanRegion coord_bomb;
  coord_bomb.rects = {{0, 0, (1 << 30) + 2, 10}};
  EXPECT_NE(error_of(std::move(coord_bomb)).find("2^30"), std::string::npos);

  // A dense but in-extent region over the window budget.
  ScanRegion window_bomb;
  window_bomb.stride_nm = 64;
  window_bomb.rects = {{0, 0, 8192, 8192}};
  EXPECT_NE(error_of(std::move(window_bomb)).find("window"),
            std::string::npos);

  // Degenerate stride.
  ScanRegion bad_stride;
  bad_stride.stride_nm = 0;
  bad_stride.rects = {{0, 0, 100, 100}};
  EXPECT_NE(error_of(std::move(bad_stride)).find("stride"),
            std::string::npos);
}

TEST(ServeServer, FullQueueAnswersTypedBusy) {
  const auto gate = std::make_shared<GateDetector>();
  ServerConfig config;
  config.score_workers = 1;
  config.max_queue = 1;
  Server server(config);
  server.add_model("default", gate);

  std::thread blocked([&] {
    const auto resp = server.handle(score_request({{0, 0, 64, 64}}, 1));
    EXPECT_TRUE(std::holds_alternative<ScoreResult>(resp.body));
  });
  gate->wait_for_waiters(1);

  // One request is in flight and the bound is 1: the next scoring request
  // must be rejected up front, typed and op-tagged — never queued.
  const auto busy = server.handle(score_request({{0, 0, 64, 64}}, 2));
  ASSERT_TRUE(std::holds_alternative<BusyResult>(busy.body));
  EXPECT_EQ(std::get<BusyResult>(busy.body).op, Op::ScoreClip);
  EXPECT_EQ(server.registry().counter("serve.responses_busy").value(), 1u);
  EXPECT_EQ(server.registry().counter("serve.tenant.2.busy").value(), 1u);

  // Control ops bypass admission: stats still answers while saturated.
  Request stats;
  stats.body = Stats{};
  EXPECT_TRUE(
      std::holds_alternative<StatsResult>(server.handle(stats).body));

  gate->open();
  blocked.join();
  // Capacity released: scoring admits again.
  const auto after = server.handle(score_request({{0, 0, 64, 64}}, 3));
  EXPECT_TRUE(std::holds_alternative<ScoreResult>(after.body));
}

TEST(ServeServer, ReloadMidTrafficFinishesInFlightOnOldSnapshot) {
  const auto gate = std::make_shared<GateDetector>();
  Server server;
  server.add_model("default", gate, [](const std::vector<std::uint8_t>& w) {
    LHD_CHECK(!w.empty(), "empty weight blob");
    return std::make_shared<StubDetector>(static_cast<float>(w[0]));
  });
  EXPECT_EQ(server.model_version("default"), 1u);

  std::optional<float> in_flight_score;
  std::thread blocked([&] {
    const auto resp = server.handle(score_request({{0, 0, 1024, 1024}}, 1));
    ASSERT_TRUE(std::holds_alternative<ScoreResult>(resp.body));
    in_flight_score = std::get<ScoreResult>(resp.body).score;
  });
  gate->wait_for_waiters(1);

  // Reload while the request above is still inside the old detector.
  Request reload;
  ReloadWeights body;
  body.weights = {42};
  reload.body = std::move(body);
  const auto resp = server.handle(reload);
  ASSERT_TRUE(std::holds_alternative<ReloadResult>(resp.body));
  EXPECT_EQ(std::get<ReloadResult>(resp.body).version, 2u);
  EXPECT_EQ(server.model_version("default"), 2u);

  gate->open();
  blocked.join();
  // The in-flight request finished on the old snapshot (gate scores with
  // offset 0), not the new offset-42 weights.
  ASSERT_TRUE(in_flight_score.has_value());
  EXPECT_EQ(*in_flight_score, 1.0f);

  // New traffic sees the new weights, through a fresh cache (a miss, not
  // a stale version-1 memo).
  const auto fresh = server.handle(score_request({{0, 0, 1024, 1024}}, 1));
  ASSERT_TRUE(std::holds_alternative<ScoreResult>(fresh.body));
  EXPECT_EQ(std::get<ScoreResult>(fresh.body).score, 43.0f);
  EXPECT_EQ(server.registry().counter("serve.tenant.1.cache_misses").value(),
            2u);
}

TEST(ServeServer, RejectedReloadLeavesModelServing) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>(),
                   [](const std::vector<std::uint8_t>& w)
                       -> std::shared_ptr<const core::Detector> {
                     LHD_CHECK(!w.empty() && w[0] != 0xFF, "corrupt blob");
                     return std::make_shared<StubDetector>(
                         static_cast<float>(w[0]));
                   });

  Request reload;
  ReloadWeights body;
  body.weights = {0xFF};
  reload.body = std::move(body);
  const auto resp = server.handle(reload);
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(resp.body));
  EXPECT_EQ(std::get<ErrorResult>(resp.body).op, Op::ReloadWeights);
  EXPECT_EQ(server.model_version("default"), 1u);
  EXPECT_TRUE(std::holds_alternative<ScoreResult>(
      server.handle(score_request({{0, 0, 64, 64}})).body));
}

TEST(ServeServer, ReloadWithoutLoaderIsATypedError) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  Request reload;
  ReloadWeights body;
  body.weights = {1};
  reload.body = std::move(body);
  const auto resp = server.handle(reload);
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(resp.body));
  EXPECT_EQ(server.model_version("default"), 1u);
}

TEST(ServeServer, CnnWeightReloadIsBitExact) {
  // Two untrained CNNs with different init seeds = two weight versions.
  core::CnnDetectorConfig config_a;
  config_a.seed = 11;
  core::CnnDetectorConfig config_b;
  config_b.seed = 99;
  const auto det_a = std::make_shared<core::CnnDetector>("cnn", config_a);
  core::CnnDetector det_b("cnn", config_b);
  std::ostringstream blob;
  nn::save_weights(det_b.network(), blob);
  const std::string blob_str = blob.str();

  Server server;
  server.add_model("cnn", det_a, cnn_weight_loader("cnn", config_a));

  const auto rects = std::vector<Rect>{{100, 100, 400, 900},
                                       {600, 200, 900, 800}};
  // The server scores the canonical form; build the same clip for the
  // reference score so the comparison is bit-exact.
  const auto canon = data::canonical_clip(rects, 1024);
  data::Clip clip;
  clip.rects = canon.rects;
  clip.window_nm = canon.window_nm;

  Request reload;
  ReloadWeights body;
  body.model = "cnn";
  body.weights.assign(blob_str.begin(), blob_str.end());
  reload.body = std::move(body);
  const auto resp = server.handle(reload);
  ASSERT_TRUE(std::holds_alternative<ReloadResult>(resp.body))
      << std::get<ErrorResult>(resp.body).message;

  const auto scored = server.handle(score_request(rects, 0, 1024));
  ASSERT_TRUE(std::holds_alternative<ScoreResult>(scored.body));
  EXPECT_EQ(std::get<ScoreResult>(scored.body).score, det_b.score(clip));
}

TEST(ServeServer, StatsJsonIsParseableAndCounts) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  (void)server.handle(score_request({{0, 0, 100, 100}}, 5));
  (void)server.handle(score_request({{0, 0, 100, 100}}, 5));

  const auto json = obs::Json::parse(server.stats_json());
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.at("server").at("max_queue").as_int(), 32);
  const auto& model = json.at("models").at("default");
  EXPECT_EQ(model.at("version").as_int(), 1);
  EXPECT_EQ(model.at("cache").at("size").as_int(), 1);
  EXPECT_EQ(
      json.at("counters").at("serve.tenant.5.cache_hits").as_int(), 1);
  EXPECT_EQ(json.at("counters").at("serve.responses_ok").as_int(), 2);
  EXPECT_GE(
      json.at("histograms").at("serve.latency_seconds").at("count").as_int(),
      2);

  // The stats *op* carries the same document.
  Request stats;
  stats.body = Stats{};
  const auto resp = server.handle(stats);
  ASSERT_TRUE(std::holds_alternative<StatsResult>(resp.body));
  EXPECT_TRUE(
      obs::Json::parse(std::get<StatsResult>(resp.body).json).is_object());
}

TEST(ServeServer, HandleAfterStopIsATypedError) {
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  server.stop();
  const auto resp = server.handle(score_request({{0, 0, 64, 64}}));
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(resp.body));
  EXPECT_NE(std::get<ErrorResult>(resp.body).message.find("stopping"),
            std::string::npos);
}

// ---------------------------------------------------- transport + serve ---

TEST(ServeTransport, SocketpairRoundTrip) {
  auto [server_end, client_end] = socketpair_transport();
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  server.attach(std::move(server_end));

  Client client(*client_end, /*tenant=*/7);
  const auto resp = client.score_clip("", 1024, {{0, 0, 100, 200}});
  ASSERT_TRUE(std::holds_alternative<ScoreResult>(resp.body));
  const auto stats = client.stats();
  ASSERT_TRUE(std::holds_alternative<StatsResult>(stats.body));
  server.stop();
}

TEST(ServeTransport, RecoverableWireErrorKeepsSessionAlive) {
  auto [server_end, client_end] = socketpair_transport();
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  server.attach(std::move(server_end));

  // Inject a frame with a bad payload (name over the cap) raw onto the
  // wire: the session must answer a typed error and keep serving.
  const auto bad = corpus_bytes("name_overflow.hex");
  client_end->out().write(reinterpret_cast<const char*>(bad.data()),
                          static_cast<std::streamsize>(bad.size()));
  client_end->out().flush();
  const auto err = decode_response(client_end->in());
  ASSERT_TRUE(std::holds_alternative<ErrorResult>(err.body));
  EXPECT_EQ(std::get<ErrorResult>(err.body).op, Op::ScoreClip);

  Client client(*client_end);
  const auto resp = client.score_clip("", 1024, {{0, 0, 100, 200}});
  EXPECT_TRUE(std::holds_alternative<ScoreResult>(resp.body));
  server.stop();
}

TEST(ServeTransport, StopInterruptsIdleSessions) {
  auto [server_end, client_end] = socketpair_transport();
  Server server;
  server.add_model("default", std::make_shared<StubDetector>());
  server.attach(std::move(server_end));
  // No traffic: the session blocks in decode. stop() must interrupt it
  // and return rather than hang. (The test passing *is* the assertion.)
  server.stop();
}

TEST(ServeTransport, ConcurrentClientsWithReloadsAndStats) {
  ServerConfig config;
  config.score_workers = 2;
  config.max_queue = 4;  // small bound so Busy actually happens under load
  Server server(config);
  server.add_model("default", std::make_shared<StubDetector>(),
                   [](const std::vector<std::uint8_t>& w) {
                     LHD_CHECK(!w.empty(), "empty blob");
                     return std::make_shared<StubDetector>(
                         static_cast<float>(w[0]));
                   });

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok{0};
  std::atomic<int> busy{0};
  std::atomic<int> errors{0};

  std::vector<std::shared_ptr<Transport>> client_ends;
  for (int c = 0; c < kClients; ++c) {
    auto [server_end, client_end] = socketpair_transport();
    server.attach(std::move(server_end));
    client_ends.push_back(std::move(client_end));
  }

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      Client client(*client_ends[static_cast<std::size_t>(c)],
                    static_cast<std::uint32_t>(c));
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Response resp;
        switch (rng.next_below(3)) {
          case 0:
            resp = client.score_clip("", 1024,
                                     random_rects(rng, 1 + rng.next_below(4),
                                                  1024));
            break;
          case 1:
            resp = client.scan_region("", 1024, 512,
                                      random_rects(rng, 4, 4096));
            break;
          default:
            resp = client.stats();
            break;
        }
        switch (response_status(resp)) {
          case Status::Ok:
            ok.fetch_add(1);
            break;
          case Status::Busy:
            busy.fetch_add(1);
            break;
          case Status::Error:
            errors.fetch_add(1);
            break;
        }
      }
    });
  }
  // Reload concurrently with the traffic above: every response must still
  // be Ok or Busy — a reload must never fail an in-flight request.
  std::thread reloader([&] {
    for (std::uint8_t v = 1; v <= 5; ++v) {
      Request reload;
      ReloadWeights body;
      body.weights = {v};
      reload.body = std::move(body);
      const auto resp = server.handle(reload);
      EXPECT_TRUE(std::holds_alternative<ReloadResult>(resp.body));
    }
  });

  for (auto& t : threads) t.join();
  reloader.join();
  server.stop();

  EXPECT_EQ(ok.load() + busy.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server.model_version("default"), 6u);
}

}  // namespace
}  // namespace lhd::serve
