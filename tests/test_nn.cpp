// Tests for lhd/nn: tensors, layers (with numerical gradient checks), loss,
// optimizers, network training, biased learning, serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lhd/nn/gemm.hpp"
#include "lhd/nn/network.hpp"
#include "lhd/nn/serialize.hpp"
#include "lhd/nn/trainer.hpp"
#include "lhd/testkit/testkit.hpp"

namespace lhd::nn {
namespace {

// ---------------------------------------------------------------- tensor --

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.rank(), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 3.5f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t[7], 3.5f);
}

TEST(Tensor, ReshapeSizeMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), Error);
}

// ------------------------------------------------------- layer behaviours --

TEST(Relu, ZeroesNegativesForwardAndBackward) {
  Relu relu;
  Tensor in({1, 4});
  in[0] = -1.0f;
  in[1] = 2.0f;
  in[2] = 0.0f;
  in[3] = -0.5f;
  const Tensor out = relu.forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  Tensor grad({1, 4}, 1.0f);
  const Tensor gin = relu.backward(grad);
  EXPECT_FLOAT_EQ(gin[0], 0.0f);
  EXPECT_FLOAT_EQ(gin[1], 1.0f);
  EXPECT_FLOAT_EQ(gin[3], 0.0f);
}

TEST(MaxPool2, PicksMaximaAndRoutesGradient) {
  MaxPool2 pool;
  Tensor in({1, 1, 2, 2});
  in[0] = 1.0f;
  in[1] = 5.0f;
  in[2] = 2.0f;
  in[3] = 3.0f;
  const Tensor out = pool.forward(in, true);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  Tensor grad({1, 1, 1, 1});
  grad[0] = 7.0f;
  const Tensor gin = pool.backward(grad);
  EXPECT_FLOAT_EQ(gin[1], 7.0f);
  EXPECT_FLOAT_EQ(gin[0], 0.0f);
}

TEST(MaxPool2, RejectsOddDims) {
  MaxPool2 pool;
  Tensor in({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(in, true), Error);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5);
  Tensor in({1, 100}, 1.0f);
  EXPECT_EQ(drop.forward(in, false), in);
}

TEST(Dropout, TrainModeDropsAboutP) {
  Dropout drop(0.5, /*seed=*/3);
  Tensor in({1, 2000}, 1.0f);
  const Tensor out = drop.forward(in, true);
  int zeros = 0;
  for (std::size_t i = 0; i < out.size(); ++i) zeros += (out[i] == 0.0f);
  EXPECT_NEAR(zeros / 2000.0, 0.5, 0.06);
  // Survivors are scaled by 1/(1-p).
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != 0.0f) {
      EXPECT_FLOAT_EQ(out[i], 2.0f);
    }
  }
}

TEST(Linear, ComputesAffineMap) {
  Linear lin(2, 1);
  // Set weights manually: w = [3, -2], b = 1.
  auto params = lin.params();
  (*params[0].value)[0] = 3.0f;
  (*params[0].value)[1] = -2.0f;
  (*params[1].value)[0] = 1.0f;
  Tensor in({1, 2});
  in[0] = 4.0f;
  in[1] = 5.0f;
  const Tensor out = lin.forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 3.0f * 4 - 2 * 5 + 1);
}

TEST(Conv2d, MatchesNaiveReference) {
  // 1 input channel, 1 output channel, 3x3 kernel on a 4x4 image, pad 1.
  Conv2d conv(1, 1, 3, 1);
  Rng rng(5);
  auto params = conv.params();
  for (auto& w : *params[0].value) {
    w = static_cast<float>(rng.next_gaussian());
  }
  (*params[1].value)[0] = 0.3f;

  Tensor in({1, 1, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_double());
  }
  const Tensor out = conv.forward(in, true);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 1, 4, 4}));

  const auto& w = *params[0].value;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      double expect = 0.3;  // bias
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          const int sy = y + ky - 1;
          const int sx = x + kx - 1;
          if (sy < 0 || sy >= 4 || sx < 0 || sx >= 4) continue;
          expect += w[static_cast<std::size_t>(ky * 3 + kx)] *
                    in[static_cast<std::size_t>(sy * 4 + sx)];
        }
      }
      EXPECT_NEAR(out[static_cast<std::size_t>(y * 4 + x)], expect, 1e-4);
    }
  }
}

TEST(Conv2d, ChannelMismatchThrows) {
  Conv2d conv(3, 4, 3, 1);
  Tensor in({1, 2, 4, 4});
  EXPECT_THROW(conv.forward(in, true), Error);
}

// ------------------------------------------------------------ gemm kernel --

/// Restores the env/compiled kernel-path default when a test that forces a
/// path exits (including via a failed assertion).
struct KernelPathGuard {
  ~KernelPathGuard() { clear_kernel_path_override(); }
};

void fill_random(Rng& rng, std::vector<float>& v) {
  for (auto& x : v) x = static_cast<float>(rng.next_double(-1.0, 1.0));
}

TEST(Gemm, BlockedMatchesReferenceAcrossTailShapes) {
  // Shapes straddling the microkernel tile edges (MR=6, NR=32) and, with
  // k=300, the KC=256 panel edge. C is seeded non-zero so the accumulate
  // semantics are part of the comparison.
  Rng rng(71);
  for (const int m : {1, 5, 6, 7, 9, 97}) {
    for (const int n : {1, 31, 32, 33, 65}) {
      for (const int k : {1, 7, 64, 300}) {
        for (const bool trans_b : {false, true}) {
          const auto zm = static_cast<std::size_t>(m);
          const auto zn = static_cast<std::size_t>(n);
          const auto zk = static_cast<std::size_t>(k);
          std::vector<float> a(zm * zk), b(zk * zn), c_fast(zm * zn);
          fill_random(rng, a);
          fill_random(rng, b);
          fill_random(rng, c_fast);
          std::vector<float> c_ref = c_fast;
          const int ldb = trans_b ? k : n;
          gemm(m, n, k, a.data(), k, b.data(), ldb, trans_b, c_fast.data(),
               n);
          gemm_reference(m, n, k, a.data(), k, b.data(), ldb, trans_b,
                         c_ref.data(), n);
          for (std::size_t i = 0; i < c_fast.size(); ++i) {
            ASSERT_NEAR(c_fast[i], c_ref[i],
                        1e-4 * (1.0 + std::abs(c_ref[i])))
                << "m=" << m << " n=" << n << " k=" << k
                << " trans_b=" << trans_b << " element " << i;
          }
        }
      }
    }
  }
}

TEST(Gemm, BatchOneRowDirectBitEqualsBlockedRow) {
  // m = 1 with trans_b dispatches to the no-packing row-direct path; the
  // per-sample vs batched score contract requires its output to be
  // bit-identical to the same row computed by the blocked multi-row path.
  // k values straddle the KC=256 panel edge (the direct path must chunk
  // its accumulation by the same KC), n values cross the 8-wide j-tile.
  Rng rng(76);
  const int rows = 4;
  for (const int n : {1, 8, 9, 33}) {
    for (const int k : {7, 256, 300, 1000}) {
      const auto zn = static_cast<std::size_t>(n);
      const auto zk = static_cast<std::size_t>(k);
      std::vector<float> a(static_cast<std::size_t>(rows) * zk), b(zn * zk);
      std::vector<float> bias(zn);
      fill_random(rng, a);
      fill_random(rng, b);
      fill_random(rng, bias);
      std::vector<float> c_one = bias;
      gemm(1, n, k, a.data(), k, b.data(), k, /*trans_b=*/true, c_one.data(),
           n);
      std::vector<float> c_all(static_cast<std::size_t>(rows) * zn);
      for (int r = 0; r < rows; ++r) {
        std::copy(bias.begin(), bias.end(),
                  c_all.begin() + static_cast<std::size_t>(r) * zn);
      }
      gemm(rows, n, k, a.data(), k, b.data(), k, /*trans_b=*/true,
           c_all.data(), n);
      for (std::size_t j = 0; j < zn; ++j) {
        ASSERT_EQ(c_one[j], c_all[j])
            << "n=" << n << " k=" << k << " element " << j;
      }
    }
  }
}

TEST(Gemm, ParseKernelOverrideRecognizesValidNames) {
  EXPECT_EQ(parse_kernel_override("fast", KernelPath::kReference),
            KernelPath::kFast);
  EXPECT_EQ(parse_kernel_override("reference", KernelPath::kFast),
            KernelPath::kReference);
  // nullptr means "variable unset": silent fallback, no warning.
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_kernel_override(nullptr, KernelPath::kFast),
            KernelPath::kFast);
  EXPECT_EQ(parse_kernel_override(nullptr, KernelPath::kReference),
            KernelPath::kReference);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Gemm, ParseKernelOverrideInvalidValueWarnsAndFallsBack) {
  // A typo'd LHD_NN_KERNEL must not abort the process or silently pick a
  // kernel: it falls back to the compiled default and says so.
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_kernel_override("turbo", KernelPath::kFast),
            KernelPath::kFast);
  EXPECT_EQ(parse_kernel_override("", KernelPath::kReference),
            KernelPath::kReference);
  const std::string warnings = testing::internal::GetCapturedStderr();
  EXPECT_NE(warnings.find("turbo"), std::string::npos) << warnings;
  EXPECT_NE(warnings.find("LHD_NN_KERNEL"), std::string::npos) << warnings;
  EXPECT_NE(warnings.find("falling back"), std::string::npos) << warnings;
}

TEST(Gemm, EmptyKLeavesSeededCUntouched) {
  std::vector<float> a, b;
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  const std::vector<float> saved = c;
  gemm(2, 3, 0, a.data(), 0, b.data(), 3, false, c.data(), 3);
  EXPECT_EQ(c, saved);
}

TEST(Gemm, KernelPathOverrideRoundTrip) {
  KernelPathGuard guard;
  set_kernel_path(KernelPath::kFast);
  EXPECT_EQ(active_kernel_path(), KernelPath::kFast);
  set_kernel_path(KernelPath::kReference);
  EXPECT_EQ(active_kernel_path(), KernelPath::kReference);
  clear_kernel_path_override();
  // Back to the env/compiled default — either value, but stable and named.
  const KernelPath def = active_kernel_path();
  EXPECT_EQ(def, active_kernel_path());
  EXPECT_STREQ(kernel_path_name(KernelPath::kFast), "fast");
  EXPECT_STREQ(kernel_path_name(KernelPath::kReference), "reference");
}

TEST(Conv2d, FastPathMatchesReferencePath) {
  KernelPathGuard guard;
  // Odd channel counts so the GEMM runs with sliver tails on every edge.
  Conv2d conv(3, 5, 3, 1);
  Rng rng(73);
  conv.init(rng);
  Tensor in({2, 3, 8, 8});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  set_kernel_path(KernelPath::kFast);
  const Tensor fast = conv.infer(in);
  set_kernel_path(KernelPath::kReference);
  const Tensor ref = conv.infer(in);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast[i], ref[i], 1e-4 * (1.0 + std::abs(ref[i]))) << i;
  }
}

TEST(Linear, FastPathMatchesReferencePath) {
  KernelPathGuard guard;
  Linear lin(201, 7);  // k past one KC-free run, odd everything
  Rng rng(74);
  lin.init(rng);
  Tensor in({5, 201});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  set_kernel_path(KernelPath::kFast);
  const Tensor fast = lin.infer(in);
  set_kernel_path(KernelPath::kReference);
  const Tensor ref = lin.infer(in);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast[i], ref[i], 1e-4 * (1.0 + std::abs(ref[i]))) << i;
  }
}

TEST(Tensor, StorageIs32ByteAligned) {
  for (const int side : {1, 3, 7, 16, 33}) {
    Tensor t({side, side});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) %
                  kTensorAlignment,
              0u)
        << "side " << side;
  }
}

TEST(Network, ForwardBatchMatchesPerSampleInferBitExact) {
  // The score_batch bit-parity claim: batching changes only the GEMM's
  // m/n extent, never the per-element accumulation order, so a batched
  // forward must equal the batch-of-one forward bit for bit.
  KernelPathGuard guard;
  Network net = make_hotspot_cnn(5, 8);
  Rng rng(75);
  net.init(rng);
  const std::size_t sample = 5 * 8 * 8;
  Rows rows(7);
  for (auto& row : rows) {
    row.resize(sample);
    for (auto& x : row) x = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  for (const KernelPath path : {KernelPath::kFast, KernelPath::kReference}) {
    set_kernel_path(path);
    const Tensor batched =
        net.forward_batch(std::span<const std::vector<float>>(rows),
                          {5, 8, 8});
    ASSERT_EQ(batched.shape(), (std::vector<int>{7, 2}));
    for (std::size_t s = 0; s < rows.size(); ++s) {
      const Tensor one = net.forward_batch(
          std::span<const std::vector<float>>(rows).subspan(s, 1), {5, 8, 8});
      EXPECT_EQ(one[0], batched[s * 2 + 0]) << kernel_path_name(path) << s;
      EXPECT_EQ(one[1], batched[s * 2 + 1]) << kernel_path_name(path) << s;
    }
  }
}

TEST(Serialize, AlignedStorageRoundTripsBitIdentical) {
  // Weights live in plain std::vector<float> and tensors stay dense, so
  // the aligned-storage change must not perturb a single serialized byte
  // or a single loaded weight — proven via the save→load→save fixpoint on
  // a net whose channel counts hit every sliver-tail case.
  KernelPathGuard guard;
  Network a;
  a.add(std::make_unique<Conv2d>(3, 5, 3, 1));
  a.add(std::make_unique<Relu>());
  a.add(std::make_unique<MaxPool2>());
  a.add(std::make_unique<Linear>(5 * 4 * 4, 3));
  Network b;
  b.add(std::make_unique<Conv2d>(3, 5, 3, 1));
  b.add(std::make_unique<Relu>());
  b.add(std::make_unique<MaxPool2>());
  b.add(std::make_unique<Linear>(5 * 4 * 4, 3));
  Rng rng(76);
  a.init(rng);
  b.init(rng);  // different weights until load
  testkit::expect_weights_fixpoint(a, b);

  // And the loaded copy computes the same fast-path outputs bit for bit.
  set_kernel_path(KernelPath::kFast);
  Tensor in({2, 3, 8, 8});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  const Tensor out_a = a.infer(in);
  const Tensor out_b = b.infer(in);
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i], out_b[i]) << i;
  }
}

// ------------------------------------------------------- gradient checks --

/// Numerical gradient check of a whole (tiny) network through the loss.
/// `training` selects the forward mode for both passes (must be true for
/// nets with batch statistics; nets with dropout need false).
void check_network_gradients(Network& net, const Tensor& input,
                             const Tensor& targets, double tol,
                             bool training = false) {
  // Analytic gradients.
  const Tensor logits = net.forward(input, training);
  const LossResult base = softmax_cross_entropy(logits, targets);
  net.backward(base.grad);

  auto loss_at = [&]() {
    const Tensor l = net.forward(input, training);
    return softmax_cross_entropy(l, targets).loss;
  };

  const double eps = 1e-3;
  for (auto& param : net.params()) {
    auto& w = *param.value;
    auto& g = *param.grad;
    // Spot-check a handful of coordinates per parameter.
    for (std::size_t i = 0; i < w.size(); i += std::max<std::size_t>(1, w.size() / 5)) {
      const float saved = w[i];
      w[i] = static_cast<float>(saved + eps);
      const double up = loss_at();
      w[i] = static_cast<float>(saved - eps);
      const double down = loss_at();
      w[i] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(g[i], numeric, tol)
          << "param coordinate " << i << " of size " << w.size();
    }
    std::fill(g.begin(), g.end(), 0.0f);  // reset accumulators
  }
}

TEST(GradientCheck, LinearSoftmaxNetwork) {
  Network net;
  net.add(std::make_unique<Linear>(6, 4));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Linear>(4, 2));
  Rng rng(11);
  net.init(rng);
  Tensor in({3, 6});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_gaussian());
  }
  Tensor targets({3, 2});
  targets[0] = 1;  // sample 0: class 0
  targets[3] = 1;  // sample 1: class 1
  targets[4] = 0.7f;  // sample 2: soft target
  targets[5] = 0.3f;
  check_network_gradients(net, in, targets, 2e-3);
}

TEST(GradientCheck, ConvPoolNetwork) {
  Network net;
  net.add(std::make_unique<Conv2d>(2, 3, 3, 1));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<MaxPool2>());
  net.add(std::make_unique<Linear>(3 * 2 * 2, 2));
  Rng rng(13);
  net.init(rng);
  Tensor in({2, 2, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_gaussian());
  }
  Tensor targets({2, 2});
  targets[0] = 1;
  targets[3] = 1;
  check_network_gradients(net, in, targets, 5e-3);
}

// ------------------------------------------------------------------ loss --

TEST(Loss, SoftmaxRowsSumToOne) {
  Tensor logits({3, 2});
  logits[0] = 10;
  logits[1] = -3;
  logits[2] = 0;
  logits[3] = 0;
  logits[4] = -50;
  logits[5] = 50;
  const Tensor p = softmax(logits);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR(p[static_cast<std::size_t>(s) * 2] +
                    p[static_cast<std::size_t>(s) * 2 + 1],
                1.0f, 1e-6);
  }
  EXPECT_GT(p[0], 0.99f);
  EXPECT_LT(p[4], 1e-6f);
}

TEST(Loss, PerfectPredictionHasNearZeroLoss) {
  Tensor logits({1, 2});
  logits[0] = 20;
  logits[1] = -20;
  Tensor targets({1, 2});
  targets[0] = 1;
  const auto r = softmax_cross_entropy(logits, targets);
  EXPECT_LT(r.loss, 1e-6);
}

TEST(Loss, GradientIsProbMinusTarget) {
  Tensor logits({1, 2});  // symmetric -> p = (0.5, 0.5)
  Tensor targets({1, 2});
  targets[0] = 1;
  const auto r = softmax_cross_entropy(logits, targets);
  EXPECT_NEAR(r.grad[0], -0.5f, 1e-5);
  EXPECT_NEAR(r.grad[1], 0.5f, 1e-5);
}

TEST(Loss, ShapeMismatchThrows) {
  Tensor logits({1, 2});
  Tensor targets({2, 2});
  EXPECT_THROW(softmax_cross_entropy(logits, targets), Error);
}

// ------------------------------------------------------------- optimizers --

TEST(Optimizers, SgdAndAdamMinimizeQuadratic) {
  // Minimize f(w) = sum (w - 3)^2 via its gradient 2(w - 3).
  for (const bool use_adam : {false, true}) {
    std::vector<float> w = {0.0f, 10.0f};
    std::vector<float> g(2, 0.0f);
    std::unique_ptr<Optimizer> opt;
    if (use_adam) {
      opt = make_adam({0.2, 0.9, 0.999, 1e-8, 0.0});
    } else {
      opt = make_sgd({0.05, 0.9, 0.0});
    }
    opt->attach({{&w, &g}});
    for (int it = 0; it < 200; ++it) {
      for (std::size_t i = 0; i < w.size(); ++i) g[i] = 2 * (w[i] - 3.0f);
      opt->step();
    }
    EXPECT_NEAR(w[0], 3.0f, 0.1f) << (use_adam ? "adam" : "sgd");
    EXPECT_NEAR(w[1], 3.0f, 0.1f);
  }
}

TEST(Optimizers, StepZeroesGradients) {
  std::vector<float> w = {1.0f};
  std::vector<float> g = {5.0f};
  auto opt = make_sgd({0.1, 0.0, 0.0});
  opt->attach({{&w, &g}});
  opt->step();
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(Optimizers, LearningRateAccessors) {
  auto opt = make_adam({});
  opt->set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt->learning_rate(), 0.5);
}

// --------------------------------------------------------------- trainer --

Rows make_xor_rows(int n, std::vector<float>* labels, std::uint64_t seed) {
  Rng rng(seed);
  Rows rows;
  for (int i = 0; i < n; ++i) {
    const bool a = rng.next_bool();
    const bool b = rng.next_bool();
    std::vector<float> row(4, 0.0f);
    row[0] = a ? 1.0f : -1.0f;
    row[1] = b ? 1.0f : -1.0f;
    row[2] = static_cast<float>(rng.next_gaussian(0, 0.1));
    row[3] = static_cast<float>(rng.next_gaussian(0, 0.1));
    rows.push_back(row);
    labels->push_back((a != b) ? 1.0f : -1.0f);
  }
  return rows;
}

Network make_mlp() {
  Network net;
  net.add(std::make_unique<Linear>(4, 16));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Linear>(16, 2));
  return net;
}

TEST(Trainer, LearnsXor) {
  Network net = make_mlp();
  Trainer trainer(&net, {1, 1, 4});
  std::vector<float> y;
  const Rows x = make_xor_rows(200, &y, 31);
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.learning_rate = 5e-3;
  const auto history = trainer.train(x, y, cfg);
  ASSERT_EQ(history.size(), 40u);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_GT(history.back().accuracy, 0.95);

  // Fresh samples classify correctly.
  std::vector<float> ty;
  const Rows tx = make_xor_rows(100, &ty, 32);
  int correct = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    const bool pred = trainer.predict_proba(tx[i]) > 0.5f;
    correct += pred == (ty[i] > 0);
  }
  EXPECT_GE(correct, 90);
}

TEST(Trainer, BatchPredictionMatchesSingle) {
  Network net = make_mlp();
  Trainer trainer(&net, {1, 1, 4});
  std::vector<float> y;
  const Rows x = make_xor_rows(60, &y, 33);
  TrainConfig cfg;
  cfg.epochs = 5;
  trainer.train(x, y, cfg);
  const auto batch = trainer.predict_proba_batch(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(batch[i], trainer.predict_proba(x[i]), 1e-5);
  }
}

TEST(Trainer, BiasedLearningIncreasesRecallSideProbability) {
  // After BL fine-tuning with lambda > 0, the mean predicted hotspot
  // probability on *non-hotspot* training samples must increase.
  std::vector<float> y;
  const Rows x = make_xor_rows(200, &y, 34);

  Network plain_net = make_mlp();
  Trainer plain(&plain_net, {1, 1, 4});
  TrainConfig base;
  base.epochs = 30;
  base.learning_rate = 5e-3;
  plain.train(x, y, base);
  double p_plain = 0;
  int negatives = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] < 0) {
      p_plain += plain.predict_proba(x[i]);
      ++negatives;
    }
  }
  p_plain /= negatives;

  Network bl_net = make_mlp();
  Trainer bl(&bl_net, {1, 1, 4});
  BiasedTrainConfig blc;
  blc.pretrain = base;
  blc.lambda = 0.35;
  blc.bias_epochs = 15;
  const auto history = train_biased(bl, x, y, blc);
  EXPECT_EQ(history.size(), 45u);
  EXPECT_DOUBLE_EQ(history.back().lambda, 0.35);
  double p_bl = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] < 0) p_bl += bl.predict_proba(x[i]);
  }
  p_bl /= negatives;
  EXPECT_GT(p_bl, p_plain);
}

TEST(Trainer, BatchBiasedStopsAtFalseAlarmGuard) {
  std::vector<float> y;
  const Rows x = make_xor_rows(150, &y, 35);
  Network net = make_mlp();
  Trainer trainer(&net, {1, 1, 4});
  BatchBiasedConfig cfg;
  cfg.pretrain.epochs = 20;
  cfg.pretrain.learning_rate = 5e-3;
  cfg.lambda_schedule = {0.2, 0.4, 0.6};
  cfg.epochs_per_stage = 5;
  cfg.max_false_alarm = -1.0;  // trips immediately after the first stage
  const auto history = train_batch_biased(trainer, x, y, cfg);
  EXPECT_EQ(history.size(), 20u + 5u);  // pretrain + exactly one stage
}

TEST(Trainer, RejectsWrongRowSize) {
  Network net = make_mlp();
  Trainer trainer(&net, {1, 1, 4});
  TrainConfig cfg;
  cfg.epochs = 1;
  EXPECT_THROW(trainer.train({{1.0f, 2.0f}}, {1.0f}, cfg), Error);
}

// --------------------------------------------------------------- hotspot --

TEST(HotspotCnn, BuildsWithExpectedParamBudget) {
  Network net = make_hotspot_cnn(16, 16);
  const std::size_t params = net.param_count();
  EXPECT_GT(params, 10000u);
  EXPECT_LT(params, 200000u);
  Rng rng(1);
  net.init(rng);
  Tensor in({2, 16, 16, 16});
  const Tensor out = net.forward(in, false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 2}));
}

TEST(HotspotCnn, RejectsIndivisibleGrid) {
  EXPECT_THROW(make_hotspot_cnn(16, 6), Error);
}

TEST(HotspotCnn, InferMatchesEvalForwardBitExact) {
  // infer() is the concurrency-safe inference path used by the full-chip
  // scanner; it must reproduce forward(training=false) exactly, including
  // through batchnorm (running statistics) and dropout (identity).
  for (const bool batchnorm : {false, true}) {
    Network net = make_hotspot_cnn(4, 8, batchnorm);
    Rng rng(17);
    net.init(rng);
    Tensor in({3, 4, 8, 8});
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<float>(rng.next_gaussian());
    }
    const Tensor via_forward = net.forward(in, false);
    const Tensor via_infer = std::as_const(net).infer(in);
    ASSERT_EQ(via_infer.shape(), via_forward.shape());
    for (std::size_t i = 0; i < via_forward.size(); ++i) {
      EXPECT_EQ(via_infer[i], via_forward[i]) << "element " << i;
    }
  }
}

// --------------------------------------------------------------- weights --

TEST(Serialize, RoundTripRestoresOutputs) {
  Network net = make_mlp();
  Rng rng(2);
  net.init(rng);
  Tensor in({1, 4});
  in[0] = 0.3f;
  in[2] = -0.7f;
  const Tensor before = net.forward(in, false);

  std::stringstream buf;
  save_weights(net, buf);

  Network other = make_mlp();
  Rng rng2(99);
  other.init(rng2);  // different weights
  load_weights(other, buf);
  const Tensor after = other.forward(in, false);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(Serialize, ArchitectureMismatchThrows) {
  Network net = make_mlp();
  Rng rng(2);
  net.init(rng);
  std::stringstream buf;
  save_weights(net, buf);
  Network different;
  different.add(std::make_unique<Linear>(3, 2));
  EXPECT_THROW(load_weights(different, buf), Error);
}

TEST(Serialize, GarbageStreamThrows) {
  Network net = make_mlp();
  std::stringstream buf;
  buf << "garbage";
  EXPECT_THROW(load_weights(net, buf), Error);
}

TEST(Serialize, SaveLoadSaveFixpoint) {
  CHECK_PROPERTY("weights-fixpoint", 16, [](Rng& rng, std::size_t) {
    Network a = make_mlp();
    a.init(rng);
    Network b = make_mlp();
    Rng other(rng.next_u64());
    b.init(other);  // different weights; load must overwrite them all
    testkit::expect_weights_fixpoint(a, b);
  });
}

std::vector<float> snapshot_params(Network& net) {
  std::vector<float> flat;
  for (const auto& p : net.params()) {
    flat.insert(flat.end(), p.value->begin(), p.value->end());
  }
  return flat;
}

TEST(Serialize, TruncationAtEveryOffsetThrowsAndLeavesNetUntouched) {
  Network src = make_mlp();
  Rng rng(21);
  src.init(rng);
  std::ostringstream buf;
  save_weights(src, buf);
  const std::string blob = buf.str();
  const std::vector<std::uint8_t> bytes(blob.begin(), blob.end());

  Network dst = make_mlp();
  Rng rng2(22);
  dst.init(rng2);
  const auto before = snapshot_params(dst);

  testkit::for_each_fail_point(
      bytes, [&](std::istream& in, std::size_t fail_at) {
        try {
          load_weights(dst, in);
          FAIL() << "load succeeded with stream cut at byte " << fail_at;
        } catch (const Error& e) {
          // The error names the stream offset where the read fell short.
          EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
              << "cut at " << fail_at << ": " << e.what();
        }
        // Staged load: a failed load must not leave dst half-written.
        EXPECT_EQ(snapshot_params(dst), before)
            << "params modified by failed load cut at byte " << fail_at;
      });

  // And the uncut stream still loads into the very same net.
  std::istringstream whole(blob);
  load_weights(dst, whole);
  EXPECT_EQ(snapshot_params(dst), snapshot_params(src));
}

// ------------------------------------------------- weight-stream corpus --

std::vector<std::uint8_t> nn_corpus(const std::string& name) {
  return testkit::load_hex_file(std::string(LHD_FIXTURES_DIR) +
                                "/nn_corpus/" + name);
}

void expect_corpus_rejected(const std::string& name,
                            const std::string& needle) {
  Network net = make_hotspot_cnn(2, 8);  // 10 params, matches the corpus
  const auto bytes = nn_corpus(name);
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  try {
    load_weights(net, in);
    FAIL() << name << " loaded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << name << ": " << e.what();
  }
}

TEST(SerializeCorpus, BadMagic) {
  expect_corpus_rejected("bad_magic.hex", "byte");
}

TEST(SerializeCorpus, TruncatedAfterMagic) {
  expect_corpus_rejected("truncated_after_magic.hex", "truncated");
}

TEST(SerializeCorpus, HugeParamSizeRejectedBeforeAllocation) {
  expect_corpus_rejected("huge_param_size.hex", "size");
}

TEST(SerializeCorpus, EveryCorpusFileHasARegressionTest) {
  const std::set<std::string> covered = {
      "bad_magic.hex",
      "truncated_after_magic.hex",
      "huge_param_size.hex",
  };
  std::set<std::string> on_disk;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(LHD_FIXTURES_DIR) + "/nn_corpus")) {
    on_disk.insert(entry.path().filename().string());
  }
  EXPECT_EQ(on_disk, covered);
}


// -------------------------------------------------------------- batchnorm --

TEST(BatchNorm, NormalizesTrainingBatchPerChannel) {
  BatchNorm2d bn(2);
  Rng rng(3);
  Tensor in({4, 2, 3, 3});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_gaussian(5.0, 2.0));
  }
  const Tensor out = bn.forward(in, true);
  for (int c = 0; c < 2; ++c) {
    double sum = 0, sum2 = 0;
    int count = 0;
    for (int s = 0; s < 4; ++s) {
      for (int i = 0; i < 9; ++i) {
        const float v = out[static_cast<std::size_t>((s * 2 + c) * 9 + i)];
        sum += v;
        sum2 += static_cast<double>(v) * v;
        ++count;
      }
    }
    const double mean = sum / count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / count - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStatistics) {
  BatchNorm2d bn(1);
  Rng rng(4);
  Tensor in({8, 1, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_gaussian(3.0, 1.5));
  }
  for (int it = 0; it < 50; ++it) (void)bn.forward(in, true);
  // In eval mode the same input must come out near-normalized because the
  // running stats converged to the batch stats.
  const Tensor out = bn.forward(in, false);
  double sum = 0;
  for (std::size_t i = 0; i < out.size(); ++i) sum += out[i];
  EXPECT_NEAR(sum / static_cast<double>(out.size()), 0.0, 0.1);
}

TEST(BatchNorm, GradientCheckThroughLoss) {
  Network net;
  net.add(std::make_unique<Conv2d>(1, 2, 3, 1));
  net.add(std::make_unique<BatchNorm2d>(2));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Linear>(2 * 4 * 4, 2));
  Rng rng(15);
  net.init(rng);
  Tensor in({3, 1, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_gaussian());
  }
  Tensor targets({3, 2});
  targets[0] = 1;
  targets[3] = 1;
  targets[5] = 1;
  // Training mode: the numeric gradient recomputes batch statistics on
  // every perturbed forward, exactly what the analytic backward models.
  check_network_gradients(net, in, targets, 5e-3, /*training=*/true);
}

TEST(BatchNorm, HotspotCnnVariantTrains) {
  Network net = make_hotspot_cnn(16, 16, /*batchnorm=*/true);
  Rng rng(1);
  net.init(rng);
  Tensor in({4, 16, 16, 16});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_double());
  }
  const Tensor out = net.forward(in, true);
  EXPECT_EQ(out.shape(), (std::vector<int>{4, 2}));
}

TEST(BatchNorm, RejectsWrongChannels) {
  BatchNorm2d bn(3);
  Tensor in({1, 2, 4, 4});
  EXPECT_THROW(bn.forward(in, true), Error);
}

TEST(Trainer, LrDecayShrinksStepsAndStillLearns) {
  Network net = make_mlp();
  Trainer trainer(&net, {1, 1, 4});
  std::vector<float> y;
  const Rows x = make_xor_rows(150, &y, 77);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.learning_rate = 8e-3;
  cfg.lr_decay = 0.93;
  const auto history = trainer.train(x, y, cfg);
  EXPECT_GT(history.back().accuracy, 0.9);
}

}  // namespace
}  // namespace lhd::nn
