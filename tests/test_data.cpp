// Tests for lhd/data: clips, datasets, augmentation, serialization.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <utility>
#include <vector>

#include "lhd/data/augment.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/data/clip_hash.hpp"
#include "lhd/data/dataset.hpp"
#include "lhd/data/io.hpp"
#include "lhd/testkit/testkit.hpp"

namespace lhd::data {
namespace {

using geom::Rect;

Clip make_clip(std::vector<Rect> rects, Label label,
               geom::Coord window = 1024) {
  Clip c;
  c.rects = std::move(rects);
  c.window_nm = window;
  c.label = label;
  return c;
}

Dataset make_dataset(int hotspots, int non_hotspots) {
  Dataset ds("test");
  for (int i = 0; i < hotspots; ++i) {
    make_clip({Rect(0, i * 10, 50, i * 10 + 8)}, Label::Hotspot);
    ds.add(make_clip({Rect(0, i * 10, 50, i * 10 + 8)}, Label::Hotspot));
  }
  for (int i = 0; i < non_hotspots; ++i) {
    ds.add(make_clip({Rect(100, i * 10, 150, i * 10 + 8)},
                     Label::NonHotspot));
  }
  return ds;
}

// ----------------------------------------------------------------- clips --

TEST(Clip, RasterUsesWindowAndPixel) {
  const Clip c = make_clip({Rect(0, 0, 512, 512)}, Label::Hotspot);
  const auto img = c.raster(8);
  EXPECT_EQ(img.width(), 128);
  EXPECT_FLOAT_EQ(img.at(10, 10), 1.0f);
  EXPECT_FLOAT_EQ(img.at(100, 100), 0.0f);
}

TEST(Clip, IsHotspotReflectsLabel) {
  EXPECT_TRUE(make_clip({}, Label::Hotspot).is_hotspot());
  EXPECT_FALSE(make_clip({}, Label::NonHotspot).is_hotspot());
}

// --------------------------------------------------------------- dataset --

TEST(Dataset, AddAssignsSequentialIds) {
  Dataset ds;
  ds.add(make_clip({}, Label::Hotspot));
  ds.add(make_clip({}, Label::NonHotspot));
  EXPECT_EQ(ds[0].id, 0u);
  EXPECT_EQ(ds[1].id, 1u);
}

TEST(Dataset, StatsCountsClasses) {
  const Dataset ds = make_dataset(3, 7);
  const auto s = ds.stats();
  EXPECT_EQ(s.total, 10u);
  EXPECT_EQ(s.hotspots, 3u);
  EXPECT_EQ(s.non_hotspots, 7u);
  EXPECT_DOUBLE_EQ(s.hotspot_ratio, 0.3);
}

TEST(Dataset, StatsOnEmpty) {
  const Dataset ds;
  EXPECT_EQ(ds.stats().total, 0u);
  EXPECT_DOUBLE_EQ(ds.stats().hotspot_ratio, 0.0);
}

TEST(Dataset, FilterByLabel) {
  const Dataset ds = make_dataset(3, 7);
  EXPECT_EQ(ds.filter(Label::Hotspot).size(), 3u);
  EXPECT_EQ(ds.filter(Label::NonHotspot).size(), 7u);
}

TEST(Dataset, SplitAtPreservesAllClips) {
  const Dataset ds = make_dataset(4, 6);
  const auto [a, b] = ds.split_at(3);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 7u);
}

TEST(Dataset, SplitBeyondSizeThrows) {
  const Dataset ds = make_dataset(1, 1);
  EXPECT_THROW(ds.split_at(5), Error);
}

TEST(Dataset, AppendRenumbersIds) {
  Dataset a = make_dataset(1, 1);
  const Dataset b = make_dataset(2, 0);
  a.append(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a[3].id, 3u);
}

TEST(Dataset, ShufflePermutes) {
  Dataset ds = make_dataset(0, 30);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ds[i].rects = {Rect(0, 0, static_cast<geom::Coord>(i + 1), 1)};
  }
  Rng rng(3);
  ds.shuffle(rng);
  std::multiset<geom::Coord> widths;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    widths.insert(ds[i].rects[0].width());
  }
  EXPECT_EQ(widths.size(), 30u);
  EXPECT_EQ(*widths.begin(), 1);
  EXPECT_EQ(*widths.rbegin(), 30);
}

// ---------------------------------------------------------- augmentation --

TEST(Augment, FlipXIsInvolution) {
  const Clip c = make_clip({Rect(10, 20, 100, 200), Rect(500, 0, 700, 50)},
                           Label::Hotspot);
  EXPECT_EQ(flip_clip_x(flip_clip_x(c)).rects, c.rects);
}

TEST(Augment, FlipYIsInvolution) {
  const Clip c = make_clip({Rect(10, 20, 100, 200)}, Label::Hotspot);
  EXPECT_EQ(flip_clip_y(flip_clip_y(c)).rects, c.rects);
}

TEST(Augment, Rotate90FourTimesIsIdentity) {
  const Clip c = make_clip({Rect(10, 20, 100, 200)}, Label::Hotspot);
  Clip r = c;
  for (int i = 0; i < 4; ++i) r = rotate_clip_90(r);
  EXPECT_EQ(r.rects, c.rects);
}

TEST(Augment, FlipPreservesAreaAndWindow) {
  const Clip c = make_clip({Rect(10, 20, 100, 200)}, Label::Hotspot);
  const Clip f = flip_clip_x(c);
  EXPECT_EQ(f.window_nm, c.window_nm);
  EXPECT_EQ(f.label, c.label);
  EXPECT_EQ(f.rects[0].area(), c.rects[0].area());
  EXPECT_EQ(f.rects[0], Rect(1024 - 100, 20, 1024 - 10, 200));
}

TEST(Augment, TranslateClipsAtWindow) {
  const Clip c = make_clip({Rect(1000, 0, 1024, 50)}, Label::Hotspot);
  const Clip t = translate_clip(c, 50, 0);
  EXPECT_TRUE(t.rects.empty());  // pushed out of the window
  const Clip t2 = translate_clip(c, -100, 10);
  ASSERT_EQ(t2.rects.size(), 1u);
  EXPECT_EQ(t2.rects[0], Rect(900, 10, 924, 60));
}

TEST(Augment, RandomSymmetryPreservesLabelAndArea) {
  Rng rng(17);
  const Clip c = make_clip({Rect(100, 100, 300, 200)}, Label::Hotspot);
  for (int i = 0; i < 16; ++i) {
    const Clip s = random_symmetry(c, rng);
    EXPECT_EQ(s.label, Label::Hotspot);
    EXPECT_EQ(geom::union_area(s.rects), geom::union_area(c.rects));
  }
}

TEST(Augment, UpsampleReachesTargetRatio) {
  const Dataset ds = make_dataset(5, 95);
  Rng rng(1);
  const Dataset up = upsample_minority(ds, 0.3, rng);
  EXPECT_GE(up.stats().hotspot_ratio, 0.3);
  EXPECT_EQ(up.stats().non_hotspots, 95u);  // majority untouched
}

TEST(Augment, UpsampleNoopWhenAlreadyBalanced) {
  const Dataset ds = make_dataset(50, 50);
  Rng rng(1);
  EXPECT_EQ(upsample_minority(ds, 0.3, rng).size(), ds.size());
}

TEST(Augment, UpsampleCapsAtBalance) {
  const Dataset ds = make_dataset(10, 20);
  Rng rng(1);
  const Dataset up = upsample_minority(ds, 0.95, rng);
  EXPECT_LE(up.stats().hotspots, up.stats().non_hotspots);
}

TEST(Augment, UpsampleHandlesAllHotspot) {
  const Dataset ds = make_dataset(10, 0);
  Rng rng(1);
  EXPECT_EQ(upsample_minority(ds, 0.5, rng).size(), 10u);
}

TEST(Augment, UpsampleRejectsBadRatio) {
  const Dataset ds = make_dataset(5, 5);
  Rng rng(1);
  EXPECT_THROW(upsample_minority(ds, 0.0, rng), Error);
  EXPECT_THROW(upsample_minority(ds, 1.0, rng), Error);
}

TEST(Augment, MirrorUpsampleAddsOnlyHotspots) {
  const Dataset ds = make_dataset(5, 95);
  Rng rng(1);
  const Dataset up = upsample_minority_mirror(ds, 0.3, rng, 16);
  EXPECT_GE(up.stats().hotspot_ratio, 0.3);
  for (std::size_t i = 0; i < up.size(); ++i) {
    if (up[i].is_hotspot()) continue;
    EXPECT_EQ(up[i].rects[0].width(), 50);  // originals only
  }
}

TEST(Augment, AugmentDatasetMultipliesSize) {
  const Dataset ds = make_dataset(4, 16);
  Rng rng(2);
  const Dataset aug = augment_dataset(ds, 3, 16, rng);
  EXPECT_EQ(aug.size(), 60u);
  const auto s = aug.stats();
  EXPECT_EQ(s.hotspots, 12u);  // class balance preserved exactly
}

TEST(Augment, AugmentFactorOneIsCopy) {
  const Dataset ds = make_dataset(2, 2);
  Rng rng(2);
  EXPECT_EQ(augment_dataset(ds, 1, 16, rng).size(), 4u);
}

TEST(Augment, AugmentRejectsBadFactor) {
  const Dataset ds = make_dataset(2, 2);
  Rng rng(2);
  EXPECT_THROW(augment_dataset(ds, 0, 16, rng), Error);
}

// --------------------------------------------------------------- data io --

TEST(DataIo, StreamRoundTripPreservesEverything) {
  Dataset ds("roundtrip");
  ds.add(make_clip({Rect(1, 2, 3, 4), Rect(-5, -6, 7, 8)}, Label::Hotspot,
                   2048));
  ds.add(make_clip({}, Label::NonHotspot));
  std::stringstream buf;
  save_dataset(ds, buf);
  const Dataset back = load_dataset(buf);
  EXPECT_EQ(back.name(), "roundtrip");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].rects, ds[0].rects);
  EXPECT_EQ(back[0].window_nm, 2048);
  EXPECT_EQ(back[0].label, Label::Hotspot);
  EXPECT_TRUE(back[1].rects.empty());
  EXPECT_EQ(back[1].label, Label::NonHotspot);
}

TEST(DataIo, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "lhd_test_dataset.lhdd";
  const Dataset ds = make_dataset(3, 4);
  save_dataset_file(ds, path.string());
  const Dataset back = load_dataset_file(path.string());
  EXPECT_EQ(back.size(), 7u);
  EXPECT_EQ(back.stats().hotspots, 3u);
  fs::remove(path);
}

TEST(DataIo, RejectsGarbageMagic) {
  std::stringstream buf;
  buf << "NOT A DATASET STREAM AT ALL";
  EXPECT_THROW(load_dataset(buf), Error);
}

TEST(DataIo, RejectsTruncatedStream) {
  Dataset ds = make_dataset(2, 2);
  std::stringstream buf;
  save_dataset(ds, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_dataset(cut), Error);
}

TEST(DataIo, MissingFileThrows) {
  EXPECT_THROW(load_dataset_file("/nonexistent/path/x.lhdd"), Error);
}

TEST(DataIo, StreamFailureAtEveryByteThrowsCleanly) {
  // Fault injection: cut the stream at every single byte offset. The
  // loader must throw lhd::Error each time — never crash, hang, or return
  // a half-parsed dataset.
  Rng rng(41);
  Dataset ds("faulty");
  for (int i = 0; i < 5; ++i) {
    ds.add(testkit::random_clip(rng, 1 + static_cast<std::size_t>(i)));
  }
  std::ostringstream buf;
  save_dataset(ds, buf);
  const std::string blob = buf.str();
  const std::vector<std::uint8_t> bytes(blob.begin(), blob.end());

  testkit::for_each_fail_point(
      bytes, [&](std::istream& in, std::size_t fail_at) {
        EXPECT_THROW(load_dataset(in), Error)
            << "load succeeded with stream cut at byte " << fail_at;
      });

  // Sanity: the unfaulted stream still loads.
  std::istringstream whole(blob);
  EXPECT_EQ(load_dataset(whole).size(), ds.size());
}

// -------------------------------------------------------------- clip hash --

TEST(ClipHash, CanonicalFormSitsAtOriginSorted) {
  const auto canon = canonical_clip(
      {Rect(700, 400, 800, 500), Rect(300, 200, 400, 300)}, 1024);
  ASSERT_EQ(canon.rects.size(), 2u);
  EXPECT_EQ(canon.rects[0], Rect(0, 0, 100, 100));
  EXPECT_EQ(canon.rects[1], Rect(400, 200, 500, 300));
  EXPECT_EQ(canon.window_nm, 1024);
}

TEST(ClipHash, TranslationInvariant) {
  const Clip base =
      make_clip({Rect(100, 100, 300, 200), Rect(400, 100, 500, 600)},
                Label::Hotspot);
  for (const auto& [dx, dy] : {std::pair(512, 0), std::pair(0, -4096),
                               std::pair(12345, 6789)}) {
    Clip moved = base;
    for (auto& r : moved.rects) r = r.shifted(dx, dy);
    EXPECT_EQ(canonical_clip(moved), canonical_clip(base)) << dx << "," << dy;
    EXPECT_EQ(clip_hash(moved), clip_hash(base)) << dx << "," << dy;
  }
}

TEST(ClipHash, RectOrderInvariant) {
  const Clip ab =
      make_clip({Rect(0, 0, 100, 100), Rect(200, 300, 400, 500)},
                Label::Hotspot);
  const Clip ba =
      make_clip({Rect(200, 300, 400, 500), Rect(0, 0, 100, 100)},
                Label::Hotspot);
  EXPECT_EQ(canonical_clip(ab), canonical_clip(ba));
  EXPECT_EQ(clip_hash(ab), clip_hash(ba));
}

TEST(ClipHash, MirrorAndRotationAreDistinctPatterns) {
  // Detectors are not symmetry-invariant, so symmetric variants must not
  // share a cache entry: an asymmetric L-shaped pair and its mirrored /
  // rotated images must canonicalize differently.
  const Clip base =
      make_clip({Rect(0, 0, 300, 100), Rect(0, 100, 100, 400)},
                Label::Hotspot);
  Clip mirrored = base;  // flip x: x -> -x, then canonicalization re-origins
  for (auto& r : mirrored.rects) r = Rect(-r.xhi, r.ylo, -r.xlo, r.yhi);
  Clip rotated = base;  // rotate 90°: (x, y) -> (-y, x)
  for (auto& r : rotated.rects) r = Rect(-r.yhi, r.xlo, -r.ylo, r.xhi);
  EXPECT_NE(canonical_clip(mirrored), canonical_clip(base));
  EXPECT_NE(canonical_clip(rotated), canonical_clip(base));
  EXPECT_NE(clip_hash(mirrored), clip_hash(base));
  EXPECT_NE(clip_hash(rotated), clip_hash(base));
}

TEST(ClipHash, WindowSizeIsPartOfTheForm) {
  // Same rects in a different window = a different classification problem.
  const Clip small = make_clip({Rect(0, 0, 100, 100)}, Label::Hotspot, 512);
  const Clip large = make_clip({Rect(0, 0, 100, 100)}, Label::Hotspot, 1024);
  EXPECT_NE(canonical_clip(small), canonical_clip(large));
  EXPECT_NE(clip_hash(small), clip_hash(large));
}

TEST(ClipHash, LabelAndIdDoNotAffectTheForm) {
  Clip hot = make_clip({Rect(0, 0, 100, 100)}, Label::Hotspot);
  Clip cold = make_clip({Rect(0, 0, 100, 100)}, Label::NonHotspot);
  EXPECT_EQ(canonical_clip(hot), canonical_clip(cold));
  EXPECT_EQ(clip_hash(hot), clip_hash(cold));
}

}  // namespace
}  // namespace lhd::data
