#!/bin/bash
# Remaining table/figure binaries with time-trimmed parameters (single-core
# host); appends to bench_output.txt.
cd /root/repo
{
  echo "===== bench/fig5_imbalance ====="
  ./build/bench/fig5_imbalance --epochs=12 2>&1
  echo
  echo "===== bench/fig6_features ====="
  ./build/bench/fig6_features --skip-cnn=true 2>&1
  echo
  echo "===== bench/fig7_training ====="
  ./build/bench/fig7_training --epochs=10 --bias-epochs=4 2>&1
  echo
  echo "===== bench/fig8_scan ====="
  ./build/bench/fig8_scan 2>&1
  echo
  echo "===== bench/fig4_tradeoff ====="
  ./build/bench/fig4_tradeoff --lambda-epochs=4 2>&1
  echo
  echo "===== bench/table3_throughput ====="
  ./build/bench/table3_throughput --benchmark_min_time=0.2s 2>&1
  echo
  echo "===== bench/micro_kernels ====="
  ./build/bench/micro_kernels --benchmark_min_time=0.2s 2>&1
  echo
} >> /root/repo/bench_output.txt 2>&1
echo REST_DONE
