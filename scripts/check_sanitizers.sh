#!/usr/bin/env bash
# Sanitizer sweep, run as two ctests (see tests/CMakeLists.txt):
#
#   check_sanitizers.sh thread               # -> check_sanitizers_tsan
#   check_sanitizers.sh address,undefined    # -> check_sanitizers_asan_ubsan
#
# For the requested mode it:
#   1. probes that the configured (or default) C++ compiler can actually
#      link -fsanitize=<mode> — distro toolchains sometimes ship without
#      the runtime; without it, exit 77 (ctest SKIPPED via
#      SKIP_RETURN_CODE);
#   2. configures a dedicated build tree (build-san-<tag>) with
#      -DLHD_SANITIZE=<mode> -DLHD_NATIVE=OFF;
#   3. builds the test binaries named in LHD_SANITIZER_TARGETS (default
#      "test_util test_core test_serve lhd_conformance" — the
#      concurrency-heavy suites, the serve daemon suite, and the
#      exec-backend conformance suite; the full suite under TSan is
#      minutes, not seconds) and runs each directly.
#
# The binaries are run directly rather than through the inner tree's
# ctest: that would re-enter this script (it is itself a ctest) and drag
# in the toolchain-probing checks. Any sanitizer report fails the check —
# UBSan builds use -fno-sanitize-recover=all (top-level CMakeLists), and
# TSan/ASan exit non-zero on findings by default.

check_name="check_sanitizers"
# shellcheck source=scripts/lib.sh
. "$(dirname "$0")/lib.sh"

mode="${1:-}"
case "$mode" in
  thread | address | undefined | address,undefined) ;;
  *)
    fail "usage: check_sanitizers.sh <thread|address|undefined|address,undefined>"
    finish
    ;;
esac
tag="$(echo "$mode" | tr ',' '-')"
targets="${LHD_SANITIZER_TARGETS:-test_util test_core test_serve lhd_conformance}"

# --- 1. probe that the compiler can link this sanitizer --------------------
cxx="${CXX:-c++}"
if ! have "$cxx"; then
  note "SKIP: no C++ compiler '$cxx' on PATH"
  exit 77
fi
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
echo 'int main() { return 0; }' > "$probe_dir/probe.cpp"
if ! "$cxx" "-fsanitize=$mode" "$probe_dir/probe.cpp" -o "$probe_dir/probe" \
     2> "$probe_dir/probe.log"; then
  note "SKIP: $cxx cannot link -fsanitize=$mode (runtime not installed?)"
  exit 77
fi

# --- 2. configure the dedicated tree ----------------------------------------
build_dir="$root/build-san-$tag"
if ! cmake -B "$build_dir" -S "$root" \
     "-DLHD_SANITIZE=$mode" \
     -DLHD_NATIVE=OFF \
     > "$build_dir.cmake.log" 2>&1; then
  tail -30 "$build_dir.cmake.log" >&2
  fail "cmake configure with -DLHD_SANITIZE=$mode failed"
  finish
fi

# --- 3. build and run the selected test binaries -----------------------------
# shellcheck disable=SC2086  # word-splitting of $targets is the interface
if ! cmake --build "$build_dir" --target $targets -j \
     > "$build_dir.build.log" 2>&1; then
  tail -30 "$build_dir.build.log" >&2
  fail "building [$targets] under -fsanitize=$mode failed"
  finish
fi

for target in $targets; do
  bin="$build_dir/tests/$target"
  if [ ! -x "$bin" ] && [ -x "$build_dir/tests/conformance/$target" ]; then
    bin="$build_dir/tests/conformance/$target"
  fi
  if [ ! -x "$bin" ]; then
    fail "$target did not produce $bin (is it a tests/ binary?)"
    continue
  fi
  log="$build_dir/$target.run.log"
  if "$bin" --gtest_brief=1 > "$log" 2>&1; then
    note "$target: OK under -fsanitize=$mode"
  else
    tail -40 "$log" >&2
    fail "$target failed under -fsanitize=$mode (log tail above; full log: $log)"
  fi
done

finish "a sanitizer finding is a real bug until proven otherwise — see docs/STATIC_ANALYSIS.md"
