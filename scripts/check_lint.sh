#!/usr/bin/env bash
# Static-analysis gate, run as a ctest (see tests/CMakeLists.txt).
#
#   check_lint.sh [BUILD_DIR]
#
# Three layers, strictest available first:
#   1. House concurrency rules (always run, pure grep — no toolchain):
#      a. a public core/obs/util header that declares a mutex member must
#         annotate at least one piece of state with LHD_GUARDED_BY — a
#         mutex protecting nothing declared is a discipline hole;
#      b. raw std::mutex / std::lock_guard / std::unique_lock /
#         std::condition_variable are banned in src/ outside
#         util/thread_annotations.hpp: locked code must use the annotated
#         lhd::Mutex shims so Clang Thread Safety Analysis sees it.
#   2. clang-tidy over every src/ translation unit via the build dir's
#      compile_commands.json and the repo .clang-tidy (skipped with a note
#      when clang-tidy is not installed).
#   3. shellcheck over scripts/*.sh (skipped with a note when absent).
#
# BUILD_DIR defaults to <repo>/build. See docs/STATIC_ANALYSIS.md for the
# triage guide.

check_name="check_lint"
# shellcheck source=scripts/lib.sh
. "$(dirname "$0")/lib.sh"

build_dir="${1:-$root/build}"

# Strip // comments so prose like "guarded by a mutex" never trips the
# type-usage patterns below.
strip_comments() {
  sed 's|//.*||' "$1"
}

# --- 1a. mutex members in public headers must guard annotated state --------
for header in "$root"/src/lhd/core/*.hpp "$root"/src/lhd/obs/*.hpp \
              "$root"/src/lhd/util/*.hpp; do
  case "$header" in
    */thread_annotations.hpp) continue ;;  # the shim's own internals
  esac
  if strip_comments "$header" |
      grep -qE '^[[:space:]]*(mutable[[:space:]]+)?((lhd::)?Mutex|std::(recursive_|shared_|timed_)?mutex)[[:space:]]+[A-Za-z_][A-Za-z0-9_]*;' &&
      ! grep -q 'LHD_GUARDED_BY' "$header"; then
    fail "'${header#"$root"/}' declares a mutex member but no LHD_GUARDED_BY state — annotate what the mutex protects"
  fi
done

# --- 1b. no raw std synchronization primitives outside the shim ------------
for src_file in "$root"/src/lhd/*/*.hpp "$root"/src/lhd/*/*.cpp; do
  case "$src_file" in
    */thread_annotations.hpp) continue ;;
  esac
  if strip_comments "$src_file" |
      grep -qE 'std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b'; then
    fail "'${src_file#"$root"/}' uses a raw std synchronization primitive — use lhd::Mutex/MutexLock/CondVar from util/thread_annotations.hpp"
  fi
done

# --- 2. clang-tidy ---------------------------------------------------------
if have clang-tidy; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    fail "no compile_commands.json in '$build_dir' — configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
  else
    # Only first-party TUs; the database also holds tests/bench/examples.
    tidy_out="$(find "$root/src" -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "$build_dir" --quiet 2> /dev/null)"
    if echo "$tidy_out" | grep -qE 'warning:|error:'; then
      echo "$tidy_out" >&2
      fail "clang-tidy reported findings (config: .clang-tidy)"
    fi
  fi
else
  note "SKIP clang-tidy (not installed) — house rules still enforced"
fi

# --- 3. shellcheck ---------------------------------------------------------
if have shellcheck; then
  if ! shellcheck "$root"/scripts/*.sh; then
    fail "shellcheck reported findings in scripts/"
  fi
else
  note "SKIP shellcheck (not installed)"
fi

finish "see docs/STATIC_ANALYSIS.md for how to triage"
