#!/usr/bin/env bash
# Static-analysis gate, run as a ctest (see tests/CMakeLists.txt).
#
#   check_lint.sh [BUILD_DIR]
#
# Layers, strictest available first (docs/STATIC_ANALYSIS.md has the
# full four-layer picture and the triage guide):
#   1. House concurrency rules:
#      a. a public core/obs/util header that declares a mutex member must
#         annotate at least one piece of state with LHD_GUARDED_BY — a
#         mutex protecting nothing declared is a discipline hole;
#      b. raw std::mutex / std::lock_guard / std::unique_lock /
#         std::condition_variable are banned in src/ outside
#         util/thread_annotations.hpp: locked code must use the annotated
#         lhd::Mutex shims so Clang Thread Safety Analysis sees it.
#      When BUILD_DIR holds a built tools/lhd_lint, both rules delegate to
#      it (token-accurate: comments, strings and raw strings can never
#      false-positive, suppressions and the baseline apply). The grep
#      fallback below keeps toolchain-free runs honest. The *full* lhd_lint
#      rule set runs as its own ctest (`lhd_lint`).
#   2. clang-tidy over every src/ translation unit via the build dir's
#      compile_commands.json and the repo .clang-tidy (skipped with a note
#      when clang-tidy is not installed).
#   3. shellcheck over scripts/*.sh (skipped with a note when absent).
#
# BUILD_DIR defaults to <repo>/build.

check_name="check_lint"
# shellcheck source=scripts/lib.sh
. "$(dirname "$0")/lib.sh"

build_dir="${1:-$root/build}"

# Strip // comments, /* ... */ block comments (including multi-line) and
# the *contents* of "..." string literals, so prose like "guarded by a
# mutex" never trips the type-usage patterns below. A one-pass awk state
# machine; raw strings and multi-line literals are beyond it — that level
# of accuracy is what the lhd_lint delegation above provides.
strip_comments() {
  awk '
    BEGIN { inblock = 0 }
    {
      line = $0; out = ""; i = 1; n = length(line)
      while (i <= n) {
        c = substr(line, i, 1); d = substr(line, i + 1, 1)
        if (inblock) {
          if (c == "*" && d == "/") { inblock = 0; i += 2 } else { i++ }
          continue
        }
        if (c == "/" && d == "/") break
        if (c == "/" && d == "*") { inblock = 1; i += 2; continue }
        if (c == "\"") {
          i++
          while (i <= n) {
            e = substr(line, i, 1)
            if (e == "\\") { i += 2; continue }
            i++
            if (e == "\"") break
          }
          out = out "\"\""
          continue
        }
        out = out c; i++
      }
      print out
    }' "$1"
}

# Regression self-test for strip_comments: block comments and string
# literals mentioning primitives must come out inert, real code must
# survive. Guards the fallback itself — a broken stripper either
# false-positives on prose or waves real usage through.
strip_fixture="$(mktemp)"
trap 'rm -f "$strip_fixture"' EXIT
cat > "$strip_fixture" << 'EOF'
// std::mutex in a line comment
/* std::mutex in a
   multi-line block comment */
const char* s = "std::mutex in a string \" with escape";
int live; /* trailing */ std::mutex real_usage;
EOF
stripped="$(strip_comments "$strip_fixture")"
if echo "$stripped" | grep -c 'std::mutex' | grep -qxv 1; then
  fail "strip_comments self-test: expected exactly the one live std::mutex to survive stripping"
fi
if ! echo "$stripped" | grep -q 'int live'; then
  fail "strip_comments self-test: real code before a trailing block comment was lost"
fi

# --- 1. house concurrency rules ---------------------------------------------
lint_bin="$build_dir/tools/lhd_lint"
if [ -x "$lint_bin" ]; then
  # Token-accurate path: delegate rules 1a/1b to the in-repo analyzer.
  if ! lint_out="$("$lint_bin" --root="$root" --rule=mutex-guards \
                   --rule=raw-sync-primitive 2>&1)"; then
    echo "$lint_out" >&2
    fail "lhd_lint found concurrency-rule violations (rules mutex-guards, raw-sync-primitive)"
  fi
else
  note "tools/lhd_lint not built in '$build_dir' — using the grep fallback for rules 1a/1b"

  # --- 1a. mutex members in public headers must guard annotated state ------
  for header in "$root"/src/lhd/core/*.hpp "$root"/src/lhd/obs/*.hpp \
                "$root"/src/lhd/util/*.hpp; do
    case "$header" in
      */thread_annotations.hpp) continue ;;  # the shim's own internals
    esac
    if strip_comments "$header" |
        grep -qE '^[[:space:]]*(mutable[[:space:]]+)?((lhd::)?Mutex|std::(recursive_|shared_|timed_)?mutex)[[:space:]]+[A-Za-z_][A-Za-z0-9_]*;' &&
        ! grep -q 'LHD_GUARDED_BY' "$header"; then
      fail "'${header#"$root"/}' declares a mutex member but no LHD_GUARDED_BY state — annotate what the mutex protects"
    fi
  done

  # --- 1b. no raw std synchronization primitives outside the shim ----------
  for src_file in "$root"/src/lhd/*/*.hpp "$root"/src/lhd/*/*.cpp; do
    case "$src_file" in
      */thread_annotations.hpp) continue ;;
    esac
    if strip_comments "$src_file" |
        grep -qE 'std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b'; then
      fail "'${src_file#"$root"/}' uses a raw std synchronization primitive — use lhd::Mutex/MutexLock/CondVar from util/thread_annotations.hpp"
    fi
  done
fi

# --- 2. clang-tidy ---------------------------------------------------------
if have clang-tidy; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    fail "no compile_commands.json in '$build_dir' — configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
  else
    # Only first-party TUs; the database also holds tests/bench/examples.
    tidy_out="$(find "$root/src" -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "$build_dir" --quiet 2> /dev/null)"
    if echo "$tidy_out" | grep -qE 'warning:|error:'; then
      echo "$tidy_out" >&2
      fail "clang-tidy reported findings (config: .clang-tidy)"
    fi
  fi
else
  note "SKIP clang-tidy (not installed) — house rules still enforced"
fi

# --- 3. shellcheck ---------------------------------------------------------
if have shellcheck; then
  if ! shellcheck "$root"/scripts/*.sh; then
    fail "shellcheck reported findings in scripts/"
  fi
else
  note "SKIP shellcheck (not installed)"
fi

finish "see docs/STATIC_ANALYSIS.md for how to triage"
