#!/usr/bin/env bash
# Thread Safety Analysis smoke-check, run as a ctest (see
# tests/CMakeLists.txt). Proves the machine-checking actually bites:
#
#   1. (static, always) the top-level CMakeLists wires
#      -Werror=thread-safety into every Clang build — the analysis is not
#      an opt-in knob someone can forget;
#   2. (compile, needs clang) tests/fixtures/thread_safety_positive.cpp —
#      a correctly locked use of lhd::Mutex/LHD_GUARDED_BY — compiles
#      clean under -Werror=thread-safety;
#   3. (compile, needs clang) tests/fixtures/thread_safety_negative.cpp —
#      the same state with one deliberate unguarded access — FAILS to
#      compile, with a thread-safety diagnostic.
#
# Without a clang++ on PATH (or $LHD_CLANGXX), steps 2–3 are skipped and
# the script exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE.

check_name="check_thread_safety"
# shellcheck source=scripts/lib.sh
. "$(dirname "$0")/lib.sh"

# --- 1. the flag is wired, not optional ------------------------------------
if ! grep -q -- '-Werror=thread-safety' "$root/CMakeLists.txt"; then
  fail "CMakeLists.txt no longer passes -Werror=thread-safety to Clang builds"
fi
if [ "$failures" -gt 0 ]; then
  finish
fi

# --- locate a clang++ ------------------------------------------------------
clangxx="${LHD_CLANGXX:-}"
if [ -z "$clangxx" ]; then
  for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                   clang++-17 clang++-16 clang++-15 clang++-14; do
    if have "$candidate"; then
      clangxx="$candidate"
      break
    fi
  done
fi
if [ -z "$clangxx" ]; then
  note "SKIP fixture compiles: no clang++ on PATH (set LHD_CLANGXX to override)"
  exit 77
fi

flags="-std=c++20 -fsyntax-only -I$root/src -Wthread-safety -Werror=thread-safety"

# --- 2. the discipline itself is expressible (positive fixture) ------------
# shellcheck disable=SC2086  # $flags is intentionally word-split
if ! "$clangxx" $flags "$root/tests/fixtures/thread_safety_positive.cpp" 2> /tmp/lhd_tsa_pos.log; then
  cat /tmp/lhd_tsa_pos.log >&2
  fail "positive fixture failed to compile — the annotated shims are broken"
fi

# --- 3. removing the lock is a compile error (negative fixture) ------------
# shellcheck disable=SC2086
if "$clangxx" $flags "$root/tests/fixtures/thread_safety_negative.cpp" 2> /tmp/lhd_tsa_neg.log; then
  fail "negative fixture compiled — unguarded access to LHD_GUARDED_BY state must be a compile error"
elif ! grep -q 'thread-safety' /tmp/lhd_tsa_neg.log; then
  cat /tmp/lhd_tsa_neg.log >&2
  fail "negative fixture failed for a reason other than thread-safety analysis"
fi

finish "the thread-safety gate is compromised — do not merge until green"
