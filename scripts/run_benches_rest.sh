#!/usr/bin/env bash
# Remaining table/figure binaries with time-trimmed parameters (single-core
# host); appends to bench_output.txt.
#
#   scripts/run_benches_rest.sh [BUILD_DIR]     (default: <repo>/build)

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$root/build}"

{
  echo "===== bench/fig5_imbalance ====="
  "$build_dir/bench/fig5_imbalance" --epochs=12 2>&1
  echo
  echo "===== bench/fig6_features ====="
  "$build_dir/bench/fig6_features" --skip-cnn=true 2>&1
  echo
  echo "===== bench/fig7_training ====="
  "$build_dir/bench/fig7_training" --epochs=10 --bias-epochs=4 2>&1
  echo
  echo "===== bench/fig8_scan ====="
  "$build_dir/bench/fig8_scan" 2>&1
  echo
  echo "===== bench/fig4_tradeoff ====="
  "$build_dir/bench/fig4_tradeoff" --lambda-epochs=4 2>&1
  echo
  echo "===== bench/table3_throughput ====="
  "$build_dir/bench/table3_throughput" --benchmark_min_time=0.2s 2>&1
  echo
  echo "===== bench/micro_kernels ====="
  "$build_dir/bench/micro_kernels" --benchmark_min_time=0.2s 2>&1
  echo
} >> "$root/bench_output.txt" 2>&1
echo REST_DONE
