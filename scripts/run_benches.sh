#!/usr/bin/env bash
# Runs every benchmark binary in a sensible order (table1 populates the
# shared suite cache) and tees combined output to bench_output.txt.
#
#   scripts/run_benches.sh [BUILD_DIR]     (default: <repo>/build)
#
# See the README's "Build & run knobs" table for the flags each binary
# accepts; scripts/run_benches_rest.sh holds the time-trimmed variants.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$root/build}"

{
  for b in table1_benchmarks table2_detectors fig4_tradeoff fig5_imbalance \
           fig6_features fig7_training fig8_scan table3_throughput \
           micro_kernels; do
    echo "===== bench/$b ====="
    "$build_dir/bench/$b" 2>&1
    echo
  done
} | tee "$root/bench_output.txt"
