#!/usr/bin/env bash
# Docs lint, run as a ctest (see tests/CMakeLists.txt). Fails when:
#   1. a src/lhd/<module>/ directory is missing from README.md's
#      "Architecture — module map" section, or
#   2. a public header in src/lhd/core/ or src/lhd/obs/ lacks a Doxygen
#      @file file-header comment (the place thread-safety guarantees live).
# Run from anywhere: paths resolve relative to this script's repo root.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
readme="$root/README.md"
failures=0

fail() {
  echo "check_docs: $1" >&2
  failures=$((failures + 1))
}

[ -f "$readme" ] || { echo "check_docs: README.md not found" >&2; exit 1; }

# --- 1. every module directory appears in the README module map ------------
for dir in "$root"/src/lhd/*/; do
  module="$(basename "$dir")"
  # A module counts as documented when the map links to its directory,
  # e.g. **[`core/`](src/lhd/core)**.
  if ! grep -q "(src/lhd/$module)" "$readme"; then
    fail "module 'src/lhd/$module' is not in README.md's module map"
  fi
done

# --- 2. public core/obs headers carry a @file doc comment ------------------
for header in "$root"/src/lhd/core/*.hpp "$root"/src/lhd/obs/*.hpp; do
  # The @file marker must sit in the first few lines, i.e. be a real
  # file-header comment rather than buried documentation.
  if ! head -5 "$header" | grep -q "@file"; then
    fail "header '${header#"$root"/}' lacks a @file file-header comment"
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "check_docs: $failures problem(s) — update README.md's module map" \
       "or add the missing @file header comments" >&2
  exit 1
fi
echo "check_docs: OK"
