#!/usr/bin/env bash
# Docs lint, run as a ctest (see tests/CMakeLists.txt). Fails when:
#   1. a src/lhd/<module>/ directory is missing from README.md's
#      "Architecture — module map" section,
#   2. a public header in src/lhd/core/ or src/lhd/obs/ lacks a Doxygen
#      @file file-header comment (the place thread-safety guarantees live), or
#   3. an LHD_* CMake knob declared in CMakeLists.txt is missing from
#      README.md's "Build & run knobs" table, or
#   4. docs/PERFORMANCE.md (the nn kernel contract) is missing, or an
#      LHD_NN_* kernel knob is not documented in it, or
#   5. a lint rule id shipped in src/lhd/lint/rules.hpp (the kAllRuleIds
#      registry) has no backticked mention in docs/STATIC_ANALYSIS.md's
#      triage guide, or
#   6. an exec backend registered in src/lhd/exec/registry.hpp (the
#      kBackendNames block) has no backticked mention in docs/BACKENDS.md
#      and README.md — every shipped backend must be documented, or
#   7. a serve protocol op shipped in src/lhd/serve/protocol.hpp (the
#      kOpNames block) has no backticked mention in docs/SERVE.md —
#      adding a wire op means writing it down.
# Run from anywhere: paths resolve relative to this script's repo root.

check_name="check_docs"
# shellcheck source=scripts/lib.sh
. "$(dirname "$0")/lib.sh"

readme="$root/README.md"
[ -f "$readme" ] || { echo "$check_name: README.md not found" >&2; exit 1; }

# --- 1. every module directory appears in the README module map ------------
for dir in "$root"/src/lhd/*/; do
  module="$(basename "$dir")"
  # A module counts as documented when the map links to its directory,
  # e.g. **[`core/`](src/lhd/core)**.
  if ! grep -q "(src/lhd/$module)" "$readme"; then
    fail "module 'src/lhd/$module' is not in README.md's module map"
  fi
done

# --- 2. public core/obs headers carry a @file doc comment ------------------
for header in "$root"/src/lhd/core/*.hpp "$root"/src/lhd/obs/*.hpp; do
  # The @file marker must sit in the first few lines, i.e. be a real
  # file-header comment rather than buried documentation.
  if ! head -5 "$header" | grep -q "@file"; then
    fail "header '${header#"$root"/}' lacks a @file file-header comment"
  fi
done

# --- 3. every LHD_* CMake knob is in the README knobs table ----------------
# Knobs are declared as option(LHD_X ...) or set(LHD_X ... CACHE ...); each
# must have a `LHD_X` row in the "Build & run knobs" table.
knobs="$(grep -oE '^(option|set)\(LHD_[A-Z_]+' "$root/CMakeLists.txt" |
  sed -E 's/^(option|set)\(//' | sort -u)"
for knob in $knobs; do
  if ! grep -q "\`$knob\`" "$readme"; then
    fail "CMake knob '$knob' is missing from README.md's knobs table"
  fi
done

# --- 4. every LHD_NN_* kernel knob is documented in docs/PERFORMANCE.md ----
# The performance-kernel contract must exist and cover each kernel knob
# (same backticked-mention rule as the README knobs table above).
perf_doc="$root/docs/PERFORMANCE.md"
if [ ! -f "$perf_doc" ]; then
  fail "docs/PERFORMANCE.md (the nn performance-kernel contract) is missing"
else
  for knob in $knobs; do
    case "$knob" in
      LHD_NN_*)
        if ! grep -q "\`$knob\`" "$perf_doc"; then
          fail "kernel knob '$knob' is not documented in docs/PERFORMANCE.md"
        fi
        ;;
    esac
  done
fi

# --- 5. every shipped lint rule id is documented in the triage guide -------
# The single source of truth is the kAllRuleIds block in rules.hpp; each id
# listed there must appear backticked in docs/STATIC_ANALYSIS.md so a
# finding's rule id always leads to a written remedy.
rules_hpp="$root/src/lhd/lint/rules.hpp"
sa_doc="$root/docs/STATIC_ANALYSIS.md"
if [ -f "$rules_hpp" ]; then
  if [ ! -f "$sa_doc" ]; then
    fail "docs/STATIC_ANALYSIS.md is missing but src/lhd/lint ships rules"
  else
    rule_ids="$(sed -n '/kAllRuleIds\[\]/,/};/p' "$rules_hpp" |
      grep -oE '"[a-z][a-z0-9-]*"' | tr -d '"' | sort -u)"
    [ -n "$rule_ids" ] || fail "could not extract any rule ids from $rules_hpp (kAllRuleIds block)"
    for rule_id in $rule_ids; do
      if ! grep -q "\`$rule_id\`" "$sa_doc"; then
        fail "lint rule '$rule_id' (kAllRuleIds) is not documented in docs/STATIC_ANALYSIS.md"
      fi
    done
  fi
fi

# --- 6. every registered exec backend is documented ------------------------
# The single source of truth is the kBackendNames block in
# src/lhd/exec/registry.hpp; each name listed there must appear backticked
# in docs/BACKENDS.md (the backend contract) and in README.md (the
# LHD_EXEC_BACKEND knob row), so "add a backend" always includes writing
# it down.
registry_hpp="$root/src/lhd/exec/registry.hpp"
backends_doc="$root/docs/BACKENDS.md"
if [ -f "$registry_hpp" ]; then
  if [ ! -f "$backends_doc" ]; then
    fail "docs/BACKENDS.md is missing but src/lhd/exec registers backends"
  else
    backend_names="$(sed -n '/kBackendNames\[\]/,/};/p' "$registry_hpp" |
      grep -oE '"[a-z][a-z0-9-]*"' | tr -d '"' | sort -u)"
    [ -n "$backend_names" ] || fail "could not extract any backend names from $registry_hpp (kBackendNames block)"
    for backend in $backend_names; do
      if ! grep -q "\`$backend\`" "$backends_doc"; then
        fail "exec backend '$backend' (kBackendNames) is not documented in docs/BACKENDS.md"
      fi
      if ! grep -q "\`$backend\`" "$readme"; then
        fail "exec backend '$backend' (kBackendNames) is not mentioned in README.md"
      fi
    done
  fi
fi

# --- 7. every serve protocol op is documented ------------------------------
# The single source of truth is the kOpNames block in
# src/lhd/serve/protocol.hpp; each op named there must appear backticked
# in docs/SERVE.md (the wire-format contract), so "add an op" always
# includes writing it down.
protocol_hpp="$root/src/lhd/serve/protocol.hpp"
serve_doc="$root/docs/SERVE.md"
if [ -f "$protocol_hpp" ]; then
  if [ ! -f "$serve_doc" ]; then
    fail "docs/SERVE.md is missing but src/lhd/serve ships a wire protocol"
  else
    op_names="$(sed -n '/kOpNames\[\]/,/};/p' "$protocol_hpp" |
      grep -oE '"[a-z][a-z0-9-]*"' | tr -d '"' | sort -u)"
    [ -n "$op_names" ] || fail "could not extract any op names from $protocol_hpp (kOpNames block)"
    for op_name in $op_names; do
      if ! grep -q "\`$op_name\`" "$serve_doc"; then
        fail "serve op '$op_name' (kOpNames) is not documented in docs/SERVE.md"
      fi
    done
  fi
fi

finish "update README.md's module map / knobs table, docs/PERFORMANCE.md's kernel-knob coverage, docs/STATIC_ANALYSIS.md's rule-id coverage, docs/BACKENDS.md's backend coverage, docs/SERVE.md's op coverage, or add the missing @file header comments"
