# shellcheck shell=bash
# Shared helpers for the scripts/check_*.sh lint gates. Source, don't run:
#
#   . "$(dirname "$0")/lib.sh"
#
# Provides:
#   $root      — absolute repo root (parent of scripts/)
#   fail MSG   — report one finding and count it
#   note MSG   — informational line (skipped tool, context)
#   have TOOL  — true when TOOL is on PATH
#   finish NAME [HINT] — exit 1 with a summary when fail() was called,
#                        else print "NAME: OK" and exit 0

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
failures=0
# Set by the sourcing script before finish(); used in messages.
check_name="${check_name:-check}"

fail() {
  echo "$check_name: $1" >&2
  failures=$((failures + 1))
}

note() {
  echo "$check_name: $1"
}

have() {
  command -v "$1" > /dev/null 2>&1
}

finish() {
  if [ "$failures" -gt 0 ]; then
    echo "$check_name: $failures problem(s)${1:+ — $1}" >&2
    exit 1
  fi
  echo "$check_name: OK"
  exit 0
}
