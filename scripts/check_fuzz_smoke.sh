#!/usr/bin/env bash
# Fuzz smoke-check, run as a ctest (see tests/CMakeLists.txt). Proves the
# LHD_FUZZ harnesses actually build and survive a short coverage-guided
# session over the checked-in seed corpus:
#
#   1. locate a clang++ (libFuzzer ships with Clang's compiler-rt); without
#      one, exit 77 — ctest maps that to SKIPPED via SKIP_RETURN_CODE;
#   2. probe that this clang++ can link -fsanitize=fuzzer at all (distro
#      packages sometimes omit compiler-rt) — skip if not;
#   3. configure a dedicated build tree with -DLHD_FUZZ=ON and
#      -DLHD_SANITIZE=address,undefined, build the harnesses;
#   4. decode the hex corpus (tests/fixtures/*_corpus/) into binary seeds
#      and run each harness for ~10 seconds on them.
#
# Any crash, hang, sanitizer report, or leak fails the check.

check_name="check_fuzz_smoke"
# shellcheck source=scripts/lib.sh
. "$(dirname "$0")/lib.sh"

# --- 1. locate a clang++ ---------------------------------------------------
clangxx="${LHD_CLANGXX:-}"
if [ -z "$clangxx" ]; then
  for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                   clang++-17 clang++-16 clang++-15 clang++-14; do
    if have "$candidate"; then
      clangxx="$candidate"
      break
    fi
  done
fi
if [ -z "$clangxx" ]; then
  note "SKIP: no clang++ on PATH (set LHD_CLANGXX to override) — libFuzzer needs Clang"
  exit 77
fi

# --- 2. probe libFuzzer availability ---------------------------------------
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cpp" <<'CPP'
#include <cstddef>
#include <cstdint>
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t*, std::size_t) {
  return 0;
}
CPP
if ! "$clangxx" -fsanitize=fuzzer "$probe_dir/probe.cpp" \
     -o "$probe_dir/probe" 2> "$probe_dir/probe.log"; then
  note "SKIP: $clangxx cannot link -fsanitize=fuzzer (compiler-rt missing?)"
  exit 77
fi

# --- 3. build the harnesses under ASan+UBSan --------------------------------
build_dir="$root/build-fuzz"
if ! cmake -B "$build_dir" -S "$root" \
     -DCMAKE_CXX_COMPILER="$clangxx" \
     -DLHD_FUZZ=ON \
     -DLHD_SANITIZE=address,undefined \
     -DLHD_NATIVE=OFF \
     -DBUILD_TESTING=OFF \
     > "$build_dir.cmake.log" 2>&1; then
  tail -30 "$build_dir.cmake.log" >&2
  fail "cmake configure with -DLHD_FUZZ=ON failed"
  finish
fi
if ! cmake --build "$build_dir" \
     --target fuzz_gds_read fuzz_nn_load fuzz_serve_request -j \
     > "$build_dir.build.log" 2>&1; then
  tail -30 "$build_dir.build.log" >&2
  fail "building the fuzz harnesses failed"
  finish
fi

# --- 4. decode the hex corpus and run each harness --------------------------
decode_corpus() {
  # $1: source dir of .hex files, $2: destination dir of binary seeds
  mkdir -p "$2"
  for hex in "$1"/*.hex; do
    [ -e "$hex" ] || continue
    sed -e 's/#.*$//' "$hex" | tr -d ' \t\n' \
      | xxd -r -p > "$2/$(basename "$hex" .hex).bin"
  done
}

run_harness() {
  # $1: harness binary, $2: seed dir, $3: log tag
  seconds="${LHD_FUZZ_SMOKE_SECONDS:-10}"
  if ! "$1" -max_total_time="$seconds" -timeout=10 -rss_limit_mb=2048 \
       "$2" > "/tmp/lhd_fuzz_$3.log" 2>&1; then
    tail -40 "/tmp/lhd_fuzz_$3.log" >&2
    fail "$3 crashed or found a sanitizer issue (log above)"
  else
    note "$3: $(grep -c '^#' "/tmp/lhd_fuzz_$3.log" || true) status lines, no crashes in ${seconds}s"
  fi
}

decode_corpus "$root/tests/fixtures/gds_corpus" "$probe_dir/gds_seeds"
decode_corpus "$root/tests/fixtures/nn_corpus" "$probe_dir/nn_seeds"
decode_corpus "$root/tests/fixtures/serve_corpus" "$probe_dir/serve_seeds"

run_harness "$build_dir/fuzz/fuzz_gds_read" "$probe_dir/gds_seeds" fuzz_gds_read
run_harness "$build_dir/fuzz/fuzz_nn_load" "$probe_dir/nn_seeds" fuzz_nn_load
run_harness "$build_dir/fuzz/fuzz_serve_request" "$probe_dir/serve_seeds" \
            fuzz_serve_request

finish "the fuzz smoke gate found a real crash — fix before merging"
