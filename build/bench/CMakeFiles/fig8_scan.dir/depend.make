# Empty dependencies file for fig8_scan.
# This may be replaced when dependencies are built.
