file(REMOVE_RECURSE
  "CMakeFiles/fig8_scan.dir/fig8_scan.cpp.o"
  "CMakeFiles/fig8_scan.dir/fig8_scan.cpp.o.d"
  "fig8_scan"
  "fig8_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
