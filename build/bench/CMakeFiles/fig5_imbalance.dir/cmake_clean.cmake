file(REMOVE_RECURSE
  "CMakeFiles/fig5_imbalance.dir/fig5_imbalance.cpp.o"
  "CMakeFiles/fig5_imbalance.dir/fig5_imbalance.cpp.o.d"
  "fig5_imbalance"
  "fig5_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
