# Empty compiler generated dependencies file for fig5_imbalance.
# This may be replaced when dependencies are built.
