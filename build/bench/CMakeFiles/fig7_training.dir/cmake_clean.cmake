file(REMOVE_RECURSE
  "CMakeFiles/fig7_training.dir/fig7_training.cpp.o"
  "CMakeFiles/fig7_training.dir/fig7_training.cpp.o.d"
  "fig7_training"
  "fig7_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
