file(REMOVE_RECURSE
  "CMakeFiles/fig6_features.dir/fig6_features.cpp.o"
  "CMakeFiles/fig6_features.dir/fig6_features.cpp.o.d"
  "fig6_features"
  "fig6_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
