
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/core/CMakeFiles/lhd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/feature/CMakeFiles/lhd_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/ml/CMakeFiles/lhd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/nn/CMakeFiles/lhd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/synth/CMakeFiles/lhd_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/data/CMakeFiles/lhd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/litho/CMakeFiles/lhd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/gds/CMakeFiles/lhd_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/geom/CMakeFiles/lhd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
