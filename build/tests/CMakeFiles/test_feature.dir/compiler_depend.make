# Empty compiler generated dependencies file for test_feature.
# This may be replaced when dependencies are built.
