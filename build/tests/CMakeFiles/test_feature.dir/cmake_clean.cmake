file(REMOVE_RECURSE
  "CMakeFiles/test_feature.dir/test_feature.cpp.o"
  "CMakeFiles/test_feature.dir/test_feature.cpp.o.d"
  "test_feature"
  "test_feature.pdb"
  "test_feature[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
