# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_raster[1]_include.cmake")
include("/root/repo/build/tests/test_gds[1]_include.cmake")
include("/root/repo/build/tests/test_litho[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_feature[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
