# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("lhd/util")
subdirs("lhd/geom")
subdirs("lhd/gds")
subdirs("lhd/litho")
subdirs("lhd/data")
subdirs("lhd/synth")
subdirs("lhd/feature")
subdirs("lhd/ml")
subdirs("lhd/nn")
subdirs("lhd/core")
