# Empty compiler generated dependencies file for lhd_ml.
# This may be replaced when dependencies are built.
