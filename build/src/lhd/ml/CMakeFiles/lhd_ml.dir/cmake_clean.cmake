file(REMOVE_RECURSE
  "CMakeFiles/lhd_ml.dir/adaboost.cpp.o"
  "CMakeFiles/lhd_ml.dir/adaboost.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/lhd_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/kernel_svm.cpp.o"
  "CMakeFiles/lhd_ml.dir/kernel_svm.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/knn.cpp.o"
  "CMakeFiles/lhd_ml.dir/knn.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/linear_svm.cpp.o"
  "CMakeFiles/lhd_ml.dir/linear_svm.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/logistic_regression.cpp.o"
  "CMakeFiles/lhd_ml.dir/logistic_regression.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/lhd_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/pattern_match.cpp.o"
  "CMakeFiles/lhd_ml.dir/pattern_match.cpp.o.d"
  "CMakeFiles/lhd_ml.dir/random_forest.cpp.o"
  "CMakeFiles/lhd_ml.dir/random_forest.cpp.o.d"
  "liblhd_ml.a"
  "liblhd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
