file(REMOVE_RECURSE
  "liblhd_ml.a"
)
