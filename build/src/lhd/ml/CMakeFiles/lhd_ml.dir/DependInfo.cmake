
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/ml/adaboost.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/adaboost.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/adaboost.cpp.o.d"
  "/root/repo/src/lhd/ml/decision_tree.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/decision_tree.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/lhd/ml/kernel_svm.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/kernel_svm.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/kernel_svm.cpp.o.d"
  "/root/repo/src/lhd/ml/knn.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/knn.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/knn.cpp.o.d"
  "/root/repo/src/lhd/ml/linear_svm.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/linear_svm.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/linear_svm.cpp.o.d"
  "/root/repo/src/lhd/ml/logistic_regression.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/logistic_regression.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/lhd/ml/naive_bayes.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/naive_bayes.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/lhd/ml/pattern_match.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/pattern_match.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/pattern_match.cpp.o.d"
  "/root/repo/src/lhd/ml/random_forest.cpp" "src/lhd/ml/CMakeFiles/lhd_ml.dir/random_forest.cpp.o" "gcc" "src/lhd/ml/CMakeFiles/lhd_ml.dir/random_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
