file(REMOVE_RECURSE
  "liblhd_util.a"
)
