file(REMOVE_RECURSE
  "CMakeFiles/lhd_util.dir/cli.cpp.o"
  "CMakeFiles/lhd_util.dir/cli.cpp.o.d"
  "CMakeFiles/lhd_util.dir/log.cpp.o"
  "CMakeFiles/lhd_util.dir/log.cpp.o.d"
  "CMakeFiles/lhd_util.dir/table.cpp.o"
  "CMakeFiles/lhd_util.dir/table.cpp.o.d"
  "CMakeFiles/lhd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lhd_util.dir/thread_pool.cpp.o.d"
  "liblhd_util.a"
  "liblhd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
