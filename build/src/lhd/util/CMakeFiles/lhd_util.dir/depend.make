# Empty dependencies file for lhd_util.
# This may be replaced when dependencies are built.
