file(REMOVE_RECURSE
  "liblhd_geom.a"
)
