# Empty compiler generated dependencies file for lhd_geom.
# This may be replaced when dependencies are built.
