file(REMOVE_RECURSE
  "CMakeFiles/lhd_geom.dir/boolean.cpp.o"
  "CMakeFiles/lhd_geom.dir/boolean.cpp.o.d"
  "CMakeFiles/lhd_geom.dir/polygon.cpp.o"
  "CMakeFiles/lhd_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/lhd_geom.dir/raster.cpp.o"
  "CMakeFiles/lhd_geom.dir/raster.cpp.o.d"
  "liblhd_geom.a"
  "liblhd_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
