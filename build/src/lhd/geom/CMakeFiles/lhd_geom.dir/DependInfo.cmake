
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/geom/boolean.cpp" "src/lhd/geom/CMakeFiles/lhd_geom.dir/boolean.cpp.o" "gcc" "src/lhd/geom/CMakeFiles/lhd_geom.dir/boolean.cpp.o.d"
  "/root/repo/src/lhd/geom/polygon.cpp" "src/lhd/geom/CMakeFiles/lhd_geom.dir/polygon.cpp.o" "gcc" "src/lhd/geom/CMakeFiles/lhd_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/lhd/geom/raster.cpp" "src/lhd/geom/CMakeFiles/lhd_geom.dir/raster.cpp.o" "gcc" "src/lhd/geom/CMakeFiles/lhd_geom.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
