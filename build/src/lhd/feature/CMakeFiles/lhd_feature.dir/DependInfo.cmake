
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/feature/ccas.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/ccas.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/ccas.cpp.o.d"
  "/root/repo/src/lhd/feature/dct.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/dct.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/dct.cpp.o.d"
  "/root/repo/src/lhd/feature/density.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/density.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/density.cpp.o.d"
  "/root/repo/src/lhd/feature/extractor.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/extractor.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/extractor.cpp.o.d"
  "/root/repo/src/lhd/feature/pca.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/pca.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/pca.cpp.o.d"
  "/root/repo/src/lhd/feature/scaler.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/scaler.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/scaler.cpp.o.d"
  "/root/repo/src/lhd/feature/squish.cpp" "src/lhd/feature/CMakeFiles/lhd_feature.dir/squish.cpp.o" "gcc" "src/lhd/feature/CMakeFiles/lhd_feature.dir/squish.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/data/CMakeFiles/lhd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/geom/CMakeFiles/lhd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
