file(REMOVE_RECURSE
  "liblhd_feature.a"
)
