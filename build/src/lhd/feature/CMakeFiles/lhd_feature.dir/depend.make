# Empty dependencies file for lhd_feature.
# This may be replaced when dependencies are built.
