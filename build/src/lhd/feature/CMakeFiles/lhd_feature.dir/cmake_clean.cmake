file(REMOVE_RECURSE
  "CMakeFiles/lhd_feature.dir/ccas.cpp.o"
  "CMakeFiles/lhd_feature.dir/ccas.cpp.o.d"
  "CMakeFiles/lhd_feature.dir/dct.cpp.o"
  "CMakeFiles/lhd_feature.dir/dct.cpp.o.d"
  "CMakeFiles/lhd_feature.dir/density.cpp.o"
  "CMakeFiles/lhd_feature.dir/density.cpp.o.d"
  "CMakeFiles/lhd_feature.dir/extractor.cpp.o"
  "CMakeFiles/lhd_feature.dir/extractor.cpp.o.d"
  "CMakeFiles/lhd_feature.dir/pca.cpp.o"
  "CMakeFiles/lhd_feature.dir/pca.cpp.o.d"
  "CMakeFiles/lhd_feature.dir/scaler.cpp.o"
  "CMakeFiles/lhd_feature.dir/scaler.cpp.o.d"
  "CMakeFiles/lhd_feature.dir/squish.cpp.o"
  "CMakeFiles/lhd_feature.dir/squish.cpp.o.d"
  "liblhd_feature.a"
  "liblhd_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
