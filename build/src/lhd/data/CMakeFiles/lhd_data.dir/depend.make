# Empty dependencies file for lhd_data.
# This may be replaced when dependencies are built.
