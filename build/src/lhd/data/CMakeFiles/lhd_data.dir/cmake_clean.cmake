file(REMOVE_RECURSE
  "CMakeFiles/lhd_data.dir/augment.cpp.o"
  "CMakeFiles/lhd_data.dir/augment.cpp.o.d"
  "CMakeFiles/lhd_data.dir/dataset.cpp.o"
  "CMakeFiles/lhd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/lhd_data.dir/io.cpp.o"
  "CMakeFiles/lhd_data.dir/io.cpp.o.d"
  "liblhd_data.a"
  "liblhd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
