file(REMOVE_RECURSE
  "liblhd_data.a"
)
