
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/data/augment.cpp" "src/lhd/data/CMakeFiles/lhd_data.dir/augment.cpp.o" "gcc" "src/lhd/data/CMakeFiles/lhd_data.dir/augment.cpp.o.d"
  "/root/repo/src/lhd/data/dataset.cpp" "src/lhd/data/CMakeFiles/lhd_data.dir/dataset.cpp.o" "gcc" "src/lhd/data/CMakeFiles/lhd_data.dir/dataset.cpp.o.d"
  "/root/repo/src/lhd/data/io.cpp" "src/lhd/data/CMakeFiles/lhd_data.dir/io.cpp.o" "gcc" "src/lhd/data/CMakeFiles/lhd_data.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/geom/CMakeFiles/lhd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
