
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/synth/builder.cpp" "src/lhd/synth/CMakeFiles/lhd_synth.dir/builder.cpp.o" "gcc" "src/lhd/synth/CMakeFiles/lhd_synth.dir/builder.cpp.o.d"
  "/root/repo/src/lhd/synth/chip_gen.cpp" "src/lhd/synth/CMakeFiles/lhd_synth.dir/chip_gen.cpp.o" "gcc" "src/lhd/synth/CMakeFiles/lhd_synth.dir/chip_gen.cpp.o.d"
  "/root/repo/src/lhd/synth/clip_gen.cpp" "src/lhd/synth/CMakeFiles/lhd_synth.dir/clip_gen.cpp.o" "gcc" "src/lhd/synth/CMakeFiles/lhd_synth.dir/clip_gen.cpp.o.d"
  "/root/repo/src/lhd/synth/motifs.cpp" "src/lhd/synth/CMakeFiles/lhd_synth.dir/motifs.cpp.o" "gcc" "src/lhd/synth/CMakeFiles/lhd_synth.dir/motifs.cpp.o.d"
  "/root/repo/src/lhd/synth/suites.cpp" "src/lhd/synth/CMakeFiles/lhd_synth.dir/suites.cpp.o" "gcc" "src/lhd/synth/CMakeFiles/lhd_synth.dir/suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/gds/CMakeFiles/lhd_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/litho/CMakeFiles/lhd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/data/CMakeFiles/lhd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/geom/CMakeFiles/lhd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
