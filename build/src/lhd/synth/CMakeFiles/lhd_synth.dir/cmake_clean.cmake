file(REMOVE_RECURSE
  "CMakeFiles/lhd_synth.dir/builder.cpp.o"
  "CMakeFiles/lhd_synth.dir/builder.cpp.o.d"
  "CMakeFiles/lhd_synth.dir/chip_gen.cpp.o"
  "CMakeFiles/lhd_synth.dir/chip_gen.cpp.o.d"
  "CMakeFiles/lhd_synth.dir/clip_gen.cpp.o"
  "CMakeFiles/lhd_synth.dir/clip_gen.cpp.o.d"
  "CMakeFiles/lhd_synth.dir/motifs.cpp.o"
  "CMakeFiles/lhd_synth.dir/motifs.cpp.o.d"
  "CMakeFiles/lhd_synth.dir/suites.cpp.o"
  "CMakeFiles/lhd_synth.dir/suites.cpp.o.d"
  "liblhd_synth.a"
  "liblhd_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
