file(REMOVE_RECURSE
  "liblhd_synth.a"
)
