# Empty compiler generated dependencies file for lhd_synth.
# This may be replaced when dependencies are built.
