# Empty compiler generated dependencies file for lhd_litho.
# This may be replaced when dependencies are built.
