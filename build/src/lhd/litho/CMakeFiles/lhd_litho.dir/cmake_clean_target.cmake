file(REMOVE_RECURSE
  "liblhd_litho.a"
)
