file(REMOVE_RECURSE
  "CMakeFiles/lhd_litho.dir/metrology.cpp.o"
  "CMakeFiles/lhd_litho.dir/metrology.cpp.o.d"
  "CMakeFiles/lhd_litho.dir/optics.cpp.o"
  "CMakeFiles/lhd_litho.dir/optics.cpp.o.d"
  "CMakeFiles/lhd_litho.dir/oracle.cpp.o"
  "CMakeFiles/lhd_litho.dir/oracle.cpp.o.d"
  "liblhd_litho.a"
  "liblhd_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
