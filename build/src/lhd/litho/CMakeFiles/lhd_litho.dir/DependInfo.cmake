
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/litho/metrology.cpp" "src/lhd/litho/CMakeFiles/lhd_litho.dir/metrology.cpp.o" "gcc" "src/lhd/litho/CMakeFiles/lhd_litho.dir/metrology.cpp.o.d"
  "/root/repo/src/lhd/litho/optics.cpp" "src/lhd/litho/CMakeFiles/lhd_litho.dir/optics.cpp.o" "gcc" "src/lhd/litho/CMakeFiles/lhd_litho.dir/optics.cpp.o.d"
  "/root/repo/src/lhd/litho/oracle.cpp" "src/lhd/litho/CMakeFiles/lhd_litho.dir/oracle.cpp.o" "gcc" "src/lhd/litho/CMakeFiles/lhd_litho.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/geom/CMakeFiles/lhd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
