file(REMOVE_RECURSE
  "liblhd_gds.a"
)
