
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/gds/model.cpp" "src/lhd/gds/CMakeFiles/lhd_gds.dir/model.cpp.o" "gcc" "src/lhd/gds/CMakeFiles/lhd_gds.dir/model.cpp.o.d"
  "/root/repo/src/lhd/gds/reader.cpp" "src/lhd/gds/CMakeFiles/lhd_gds.dir/reader.cpp.o" "gcc" "src/lhd/gds/CMakeFiles/lhd_gds.dir/reader.cpp.o.d"
  "/root/repo/src/lhd/gds/records.cpp" "src/lhd/gds/CMakeFiles/lhd_gds.dir/records.cpp.o" "gcc" "src/lhd/gds/CMakeFiles/lhd_gds.dir/records.cpp.o.d"
  "/root/repo/src/lhd/gds/writer.cpp" "src/lhd/gds/CMakeFiles/lhd_gds.dir/writer.cpp.o" "gcc" "src/lhd/gds/CMakeFiles/lhd_gds.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/geom/CMakeFiles/lhd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
