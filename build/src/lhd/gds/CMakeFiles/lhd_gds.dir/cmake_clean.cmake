file(REMOVE_RECURSE
  "CMakeFiles/lhd_gds.dir/model.cpp.o"
  "CMakeFiles/lhd_gds.dir/model.cpp.o.d"
  "CMakeFiles/lhd_gds.dir/reader.cpp.o"
  "CMakeFiles/lhd_gds.dir/reader.cpp.o.d"
  "CMakeFiles/lhd_gds.dir/records.cpp.o"
  "CMakeFiles/lhd_gds.dir/records.cpp.o.d"
  "CMakeFiles/lhd_gds.dir/writer.cpp.o"
  "CMakeFiles/lhd_gds.dir/writer.cpp.o.d"
  "liblhd_gds.a"
  "liblhd_gds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_gds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
