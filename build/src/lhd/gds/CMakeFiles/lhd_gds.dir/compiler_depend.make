# Empty compiler generated dependencies file for lhd_gds.
# This may be replaced when dependencies are built.
