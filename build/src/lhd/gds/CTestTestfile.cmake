# CMake generated Testfile for 
# Source directory: /root/repo/src/lhd/gds
# Build directory: /root/repo/build/src/lhd/gds
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
