
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhd/nn/layers.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/layers.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/layers.cpp.o.d"
  "/root/repo/src/lhd/nn/loss.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/loss.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/loss.cpp.o.d"
  "/root/repo/src/lhd/nn/network.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/network.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/network.cpp.o.d"
  "/root/repo/src/lhd/nn/optimizer.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/optimizer.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/lhd/nn/serialize.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/serialize.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/lhd/nn/tensor.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/tensor.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/lhd/nn/trainer.cpp" "src/lhd/nn/CMakeFiles/lhd_nn.dir/trainer.cpp.o" "gcc" "src/lhd/nn/CMakeFiles/lhd_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhd/util/CMakeFiles/lhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
