file(REMOVE_RECURSE
  "liblhd_nn.a"
)
