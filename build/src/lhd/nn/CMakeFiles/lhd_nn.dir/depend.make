# Empty dependencies file for lhd_nn.
# This may be replaced when dependencies are built.
