file(REMOVE_RECURSE
  "CMakeFiles/lhd_nn.dir/layers.cpp.o"
  "CMakeFiles/lhd_nn.dir/layers.cpp.o.d"
  "CMakeFiles/lhd_nn.dir/loss.cpp.o"
  "CMakeFiles/lhd_nn.dir/loss.cpp.o.d"
  "CMakeFiles/lhd_nn.dir/network.cpp.o"
  "CMakeFiles/lhd_nn.dir/network.cpp.o.d"
  "CMakeFiles/lhd_nn.dir/optimizer.cpp.o"
  "CMakeFiles/lhd_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/lhd_nn.dir/serialize.cpp.o"
  "CMakeFiles/lhd_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/lhd_nn.dir/tensor.cpp.o"
  "CMakeFiles/lhd_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/lhd_nn.dir/trainer.cpp.o"
  "CMakeFiles/lhd_nn.dir/trainer.cpp.o.d"
  "liblhd_nn.a"
  "liblhd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
