file(REMOVE_RECURSE
  "liblhd_core.a"
)
