# Empty dependencies file for lhd_core.
# This may be replaced when dependencies are built.
