file(REMOVE_RECURSE
  "CMakeFiles/lhd_core.dir/cnn_detector.cpp.o"
  "CMakeFiles/lhd_core.dir/cnn_detector.cpp.o.d"
  "CMakeFiles/lhd_core.dir/ensemble.cpp.o"
  "CMakeFiles/lhd_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/lhd_core.dir/factory.cpp.o"
  "CMakeFiles/lhd_core.dir/factory.cpp.o.d"
  "CMakeFiles/lhd_core.dir/metrics.cpp.o"
  "CMakeFiles/lhd_core.dir/metrics.cpp.o.d"
  "CMakeFiles/lhd_core.dir/pipeline.cpp.o"
  "CMakeFiles/lhd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/lhd_core.dir/scan.cpp.o"
  "CMakeFiles/lhd_core.dir/scan.cpp.o.d"
  "CMakeFiles/lhd_core.dir/shallow_detector.cpp.o"
  "CMakeFiles/lhd_core.dir/shallow_detector.cpp.o.d"
  "liblhd_core.a"
  "liblhd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
