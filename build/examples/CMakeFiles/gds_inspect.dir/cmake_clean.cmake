file(REMOVE_RECURSE
  "CMakeFiles/gds_inspect.dir/gds_inspect.cpp.o"
  "CMakeFiles/gds_inspect.dir/gds_inspect.cpp.o.d"
  "gds_inspect"
  "gds_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
