# Empty dependencies file for train_custom_detector.
# This may be replaced when dependencies are built.
