file(REMOVE_RECURSE
  "CMakeFiles/train_custom_detector.dir/train_custom_detector.cpp.o"
  "CMakeFiles/train_custom_detector.dir/train_custom_detector.cpp.o.d"
  "train_custom_detector"
  "train_custom_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_custom_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
